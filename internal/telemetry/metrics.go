package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics registry: named counters, gauges and histograms covering the
// quantities the paper's cost argument is about — ATE measurements, vector
// cycles, simulated test time, SUTP iterations-to-trip, cache hits/misses,
// GA generation fitness, NN epoch error, per-worker task counts.
//
// Counters and gauges are safe to update from racing workers (the final
// totals are order-independent); histogram observations take a mutex, so
// feed them from deterministic program points when snapshot determinism
// matters. Metrics whose values depend on goroutine scheduling (per-worker
// task counts, anything wall-clock-derived) must use the "nd_" name prefix
// so report consumers can separate them from the deterministic set.

// NonDeterministicPrefix marks metrics whose values may differ between runs
// with different worker counts or machine load.
const NonDeterministicPrefix = "nd_"

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value. Nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed cumulative-style buckets:
// bucket i counts observations ≤ Bounds[i], with an implicit +Inf bucket at
// the end catching the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	n      int64
}

// DefaultMeasurementBuckets suit per-search ATE measurement counts: SUTP
// follow-ups land in the first buckets, full-range searches in the last.
func DefaultMeasurementBuckets() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64, 128} }

// DefaultErrorBuckets suit NN epoch errors (MSE) and similar small floats.
func DefaultErrorBuckets() []float64 {
	return []float64{1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1}
}

// Observe records one observation. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v → bucket "≤ bound"
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations. Nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry is a named-metric store. A nil *Registry hands out nil metrics,
// whose methods are all no-ops — instrumented code needs no enabled-checks.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore the bounds). Bounds must be
// sorted ascending; empty bounds take DefaultMeasurementBuckets. Nil-safe.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefaultMeasurementBuckets()
		}
		bs := append([]float64(nil), bounds...)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramBucket is one snapshot bucket: Count observations ≤ LE.
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
}

// Mean returns the average observation, or 0 for an empty histogram —
// never NaN, so zero-observation snapshots render as defined values.
func (hs HistogramSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return hs.Sum / float64(hs.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the containing bucket, the same estimator Prometheus's
// histogram_quantile uses: observations are assumed uniform within a
// bucket, the first finite bucket interpolates from 0 (or from its bound
// when the bound is negative), and quantiles landing in the +Inf overflow
// bucket clamp to the highest finite bound. An empty histogram returns 0
// for every q, and q outside [0, 1] is clamped — the result is always a
// finite, defined value.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	prevBound, prevCum := 0.0, int64(0)
	if hs.Buckets[0].LE < 0 {
		prevBound = hs.Buckets[0].LE
	}
	for _, b := range hs.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.LE, 1) {
				// Overflow bucket: clamp to the highest finite bound.
				return prevBound
			}
			inBucket := b.Count - prevCum
			if inBucket <= 0 {
				return b.LE
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			return prevBound + (b.LE-prevBound)*frac
		}
		if !math.IsInf(b.LE, 1) {
			prevBound = b.LE
		}
		prevCum = b.Count
	}
	return prevBound
}

// Snapshot is a frozen, JSON-encodable view of the registry. Map keys
// encode in sorted order (encoding/json), so equal registries produce
// byte-identical snapshots.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Nil-safe: a nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for name, c := range r.counts {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			h.mu.Lock()
			hs := HistogramSnapshot{Count: h.n, Sum: h.sum}
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				hs.Buckets = append(hs.Buckets, HistogramBucket{LE: b, Count: cum})
			}
			cum += h.counts[len(h.bounds)]
			hs.Buckets = append(hs.Buckets, HistogramBucket{LE: math.Inf(1), Count: cum})
			h.mu.Unlock()
			s.Histograms[name] = hs
		}
	}
	return s
}

// StripNonDeterministic returns a copy of the snapshot without the
// NonDeterministicPrefix-named metrics, the view stored in artifacts that
// must be byte-identical across executions (run-ledger records). Maps the
// strip leaves empty become nil, matching a registry that never saw them.
func (s Snapshot) StripNonDeterministic() Snapshot {
	out := Snapshot{}
	for name, v := range s.Counters {
		if strings.HasPrefix(name, NonDeterministicPrefix) {
			continue
		}
		if out.Counters == nil {
			out.Counters = make(map[string]int64)
		}
		out.Counters[name] = v
	}
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, NonDeterministicPrefix) {
			continue
		}
		if out.Gauges == nil {
			out.Gauges = make(map[string]float64)
		}
		out.Gauges[name] = v
	}
	for name, v := range s.Histograms {
		if strings.HasPrefix(name, NonDeterministicPrefix) {
			continue
		}
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot)
		}
		out.Histograms[name] = v
	}
	return out
}

// Prefixed returns a copy of the snapshot with every metric name prefixed.
// Multi-tenant hosts (the job service) use it to namespace each tenant's
// registry — "job_j000001_" + "ate_measurements_total" — before merging the
// tenants into one exposition. An nd_ prefix stays recognizable because the
// namespace goes in front of it only after the host has decided what to
// publish; StripNonDeterministic therefore runs before Prefixed when both
// are wanted.
func (s Snapshot) Prefixed(prefix string) Snapshot {
	if prefix == "" {
		return s
	}
	out := Snapshot{}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			out.Counters[prefix+name] = v
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges))
		for name, v := range s.Gauges {
			out.Gauges[prefix+name] = v
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, v := range s.Histograms {
			out.Histograms[prefix+name] = v
		}
	}
	return out
}

// MergeSnapshots combines snapshots into one: names are unioned, and on a
// collision the later snapshot wins (callers namespace with Prefixed first
// when tenants may share names). The inputs are not modified.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{}
	for _, s := range snaps {
		for name, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] = v
		}
		for name, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			out.Gauges[name] = v
		}
		for name, v := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[name] = v
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. Non-finite gauge values
// and the +Inf histogram bound are clamped to JSON-encodable forms.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := encodable(s)
	out, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding snapshot: %w", err)
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// jsonSnapshot mirrors Snapshot with the +Inf bucket bound replaced by a
// string so the document is valid JSON.
type jsonSnapshot struct {
	Counters   map[string]int64                 `json:"counters,omitempty"`
	Gauges     map[string]float64               `json:"gauges,omitempty"`
	Histograms map[string]jsonHistogramSnapshot `json:"histograms,omitempty"`
}

type jsonHistogramSnapshot struct {
	Buckets []jsonBucket `json:"buckets"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
}

type jsonBucket struct {
	LE    any   `json:"le"` // float64, or "+Inf" for the overflow bucket
	Count int64 `json:"count"`
}

func encodable(s Snapshot) jsonSnapshot {
	out := jsonSnapshot{Counters: s.Counters, Gauges: s.Gauges}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]jsonHistogramSnapshot, len(s.Histograms))
		for name, hs := range s.Histograms {
			jh := jsonHistogramSnapshot{Count: hs.Count, Sum: hs.Sum}
			for _, b := range hs.Buckets {
				le := any(b.LE)
				if math.IsInf(b.LE, 1) {
					le = "+Inf"
				}
				jh.Buckets = append(jh.Buckets, jsonBucket{LE: le, Count: b.Count})
			}
			out.Histograms[name] = jh
		}
	}
	return out
}
