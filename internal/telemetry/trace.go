// Structured event tracing. A Tracer emits a flat JSONL stream of spans
// and events forming the run → phase → task hierarchy of one
// characterization run: SUTP searches, GA generations, ensemble training
// rounds, shmoo sweeps, lot screens.
//
// The determinism contract mirrors internal/parallel's: event payloads
// carry only logical counters (task indices, generation numbers,
// measurement counts, trip points) — never wall-clock values, goroutine
// ids or map-ordered data — and instrumented code emits events only from
// deterministic program points (serial sections and task-order merge
// loops, never from racing workers). Under that contract the byte stream
// is identical for any `-parallel` worker count.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
)

// Field is one key/value pair of an event payload. Fields are encoded in
// the order given, so a fixed call site produces a fixed byte sequence.
type Field struct {
	Key   string
	Value any // int, int64, float64, string or bool
}

// I builds an integer field.
func I[T ~int | ~int64](key string, v T) Field { return Field{Key: key, Value: int64(v)} }

// F builds a float field.
func F(key string, v float64) Field { return Field{Key: key, Value: v} }

// S builds a string field.
func S(key string, v string) Field { return Field{Key: key, Value: v} }

// B builds a boolean field.
func B(key string, v bool) Field { return Field{Key: key, Value: v} }

// Tracer writes the JSONL event stream. A nil *Tracer is a valid no-op
// tracer: every method is nil-receiver-safe, so instrumented code never
// needs an enabled-check. Emission is serialized by an internal mutex;
// the determinism contract above is the caller's responsibility.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	seq    int64
	err    error // first write error; subsequent emits are dropped

	// fp is the running FNV-1a 64 digest of every emitted byte — the
	// deterministic run fingerprint. Because the stream carries only logical
	// counters, the final digest is identical for any -parallel worker count.
	fp uint64
}

// FNV-1a 64 parameters (the same hash family internal/parallel's memo-cache
// keys use), unrolled here to keep the hot path allocation-free.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewTracer traces onto an arbitrary io.Writer sink (a bytes.Buffer in
// tests, os.Stderr for ad-hoc debugging). A nil writer yields a no-op
// tracer.
func NewTracer(w io.Writer) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{w: bufio.NewWriter(w), fp: fnvOffset64}
}

// Fingerprint returns the FNV-1a 64 digest of every byte emitted so far,
// rendered "fnv1a:%016x". After the final emission (run-span end) it is
// the digest of the whole trace file. A nil tracer returns "".
func (t *Tracer) Fingerprint() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("fnv1a:%016x", t.fp)
}

// NewFileTracer traces into a JSONL file sink, truncating any existing
// file. Close flushes and closes it.
func NewFileTracer(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTracer(f)
	t.closer = f
	return t, nil
}

// Err returns the first write error the tracer swallowed, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes buffered events and closes a file-backed sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.closer = nil
	}
	return t.err
}

// Span is one node of the run → phase → task hierarchy. The zero id (from
// a nil tracer) is a no-op span.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
}

// StartSpan opens a root-level span.
func (t *Tracer) StartSpan(name string, fields ...Field) *Span {
	return t.startSpan(0, name, fields)
}

func (t *Tracer) startSpan(parent int64, name string, fields []Field) *Span {
	if t == nil {
		return nil
	}
	id := t.emit("start", 0, parent, name, fields)
	return &Span{t: t, id: id, parent: parent, name: name}
}

// Child opens a sub-span.
func (s *Span) Child(name string, fields ...Field) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(s.id, name, fields)
}

// Event records a point event inside the span.
func (s *Span) Event(name string, fields ...Field) {
	if s == nil {
		return
	}
	s.t.emit("event", s.id, 0, name, fields)
}

// End closes the span; the fields carry its summary payload (cost
// counters, outcome).
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	s.t.emit("end", s.id, 0, s.name, fields)
}

// emit writes one JSONL line and returns its sequence number (which doubles
// as the span id for "start" lines).
func (t *Tracer) emit(kind string, span, parent int64, name string, fields []Field) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	seq := t.seq
	if t.err != nil {
		return seq
	}
	var b []byte
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, seq, 10)
	b = append(b, `,"ev":"`...)
	b = append(b, kind...)
	b = append(b, '"')
	if kind == "start" {
		b = append(b, `,"span":`...)
		b = strconv.AppendInt(b, seq, 10)
		if parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendInt(b, parent, 10)
		}
	} else if span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendInt(b, span, 10)
	}
	b = append(b, `,"name":`...)
	b = appendJSONString(b, name)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		b = appendValue(b, f.Value)
	}
	b = append(b, '}', '\n')
	for _, c := range b {
		t.fp = (t.fp ^ uint64(c)) * fnvPrime64
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
	return seq
}

// appendValue encodes one payload value deterministically.
func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case float64:
		return appendJSONFloat(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case string:
		return appendJSONString(b, x)
	default:
		// Unknown types would smuggle nondeterminism (maps, pointers);
		// refuse them loudly in the stream instead of panicking mid-run.
		return append(b, `"INVALID_FIELD_TYPE"`...)
	}
}

// appendJSONFloat writes the shortest round-trip decimal form, byte-for-byte
// matching encoding/json for finite values (pinned by a property test):
// fixed-point notation in the human range, exponent notation outside it,
// with the exponent's leading zero trimmed. Non-finite values (invalid
// JSON) are written as quoted strings.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return strconv.AppendQuote(b, strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendJSONString writes a JSON string using encoding/json's escaper, which
// is deterministic for a given input.
func appendJSONString(b []byte, s string) []byte {
	enc, err := json.Marshal(s)
	if err != nil { // cannot happen for strings
		return strconv.AppendQuote(b, s)
	}
	return append(b, enc...)
}
