// Package flight is the post-mortem side of the observability layer: a
// bounded, lock-striped ring buffer that keeps the most recent run events
// (phase boundaries, searches, cache lookups, GA generations, item
// progress, pool runs) together with periodic runtime/metrics samples
// (heap size, GC pauses, goroutine count, scheduling latency).
//
// The recorder taps the same telemetry.RunObserver hook points as the live
// /progress feed, so it inherits the determinism contract for free: it only
// consumes callbacks, never feeds anything back into the tracer or the
// deterministic metrics, and attaching it cannot change a single trace byte
// (pinned by internal/obs's determinism tests). Everything the recorder
// holds — wall-clock timestamps, runtime samples — is non-deterministic by
// nature and is therefore always exported under an explicit
// `non_deterministic` quarantine, exactly like /progress's ND block.
//
// Consumers: the /debug/flight endpoint (internal/obs) serves the ring tail
// live, crash bundles (internal/cli) persist it post mortem, and the stall
// watchdog uses LastEventUnixNano to detect a run that stopped making
// progress.
package flight

import (
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// DefaultCapacity is the ring capacity the binaries use: enough to hold the
// tail of a busy phase (searches arrive in the thousands) without holding a
// whole run.
const DefaultCapacity = 512

// DefaultSampleInterval is how often the sampler reads runtime/metrics.
const DefaultSampleInterval = 500 * time.Millisecond

// Event is one recorded observer callback. Timestamps are wall-clock and
// therefore non-deterministic; they exist for post-mortem forensics, never
// for traces.
type Event struct {
	Seq          uint64             `json:"seq"`
	TimeUnixNano int64              `json:"time_unix_nano"`
	Kind         string             `json:"kind"`
	Name         string             `json:"name,omitempty"`
	Fields       map[string]float64 `json:"fields,omitempty"`
}

// Sample is one runtime/metrics reading: the process-health counters a
// post-mortem wants next to the event tail.
type Sample struct {
	TimeUnixNano       int64   `json:"time_unix_nano"`
	HeapBytes          uint64  `json:"heap_bytes"`
	Goroutines         int64   `json:"goroutines"`
	GCCycles           uint64  `json:"gc_cycles"`
	GCPauseP50Sec      float64 `json:"gc_pause_p50_sec"`
	GCPauseP99Sec      float64 `json:"gc_pause_p99_sec"`
	SchedLatencyP50Sec float64 `json:"sched_latency_p50_sec"`
	SchedLatencyP99Sec float64 `json:"sched_latency_p99_sec"`
}

// Snapshot is the exported recorder state. Callers embed it under a
// `non_deterministic` JSON key — nothing in here is stable across runs.
type Snapshot struct {
	TotalEvents       uint64  `json:"total_events"`
	Capacity          int     `json:"capacity"`
	LastEventUnixNano int64   `json:"last_event_unix_nano,omitempty"`
	Events            []Event `json:"events"`
	RuntimeSample     *Sample `json:"runtime_sample,omitempty"`
}

// stripe is one lock shard of the ring. Events are spread across stripes by
// sequence number, so concurrent recorders rarely contend on one mutex; the
// global order is recovered at read time by merging on Seq.
type stripe struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // events ever appended to this stripe
}

// Recorder is the bounded flight recorder. All methods are safe for
// concurrent use and nil-receiver-safe, so instrumentation can carry a nil
// recorder without enabled-checks.
type Recorder struct {
	stripes []stripe
	mask    uint64
	seq     atomic.Uint64
	lastNS  atomic.Int64
	sample  atomic.Pointer[Sample]

	// reg receives the nd_flight_* gauges on every sample (nil: none).
	reg *telemetry.Registry

	samplerStop chan struct{}
	samplerDone chan struct{}
}

// New builds a recorder holding at most capacity events (values below 16
// are raised to 16), striped across 8 locks.
func New(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	const nStripes = 8
	per := (capacity + nStripes - 1) / nStripes
	r := &Recorder{stripes: make([]stripe, nStripes), mask: nStripes - 1}
	for i := range r.stripes {
		r.stripes[i].buf = make([]Event, per)
	}
	return r
}

// ExportTo mirrors each runtime sample as nd_flight_* gauges in reg, so the
// Prometheus bridge serves process health next to the run metrics. Call
// before StartSampler. Nil-safe.
func (r *Recorder) ExportTo(reg *telemetry.Registry) {
	if r != nil {
		r.reg = reg
	}
}

// Capacity returns the total ring capacity. Nil-safe.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.stripes {
		n += len(r.stripes[i].buf)
	}
	return n
}

// TotalEvents returns how many events were ever recorded (recorded, not
// retained — the ring keeps only the newest Capacity of them). Nil-safe.
func (r *Recorder) TotalEvents() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// LastEventUnixNano returns the wall-clock time of the newest progress
// event, or 0 when none has arrived. Runtime samples deliberately do not
// count: the stall watchdog wants "the run stopped reporting progress", and
// the sampler keeps ticking through a hang. Nil-safe.
func (r *Recorder) LastEventUnixNano() int64 {
	if r == nil {
		return 0
	}
	return r.lastNS.Load()
}

// Record appends one event to the ring. Nil-safe.
func (r *Recorder) Record(kind, name string, fields map[string]float64) {
	r.record(kind, name, fields, true)
}

func (r *Recorder) record(kind, name string, fields map[string]float64, progress bool) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	if progress {
		r.lastNS.Store(now)
	}
	seq := r.seq.Add(1)
	st := &r.stripes[seq&r.mask]
	st.mu.Lock()
	st.buf[st.n%uint64(len(st.buf))] = Event{
		Seq: seq, TimeUnixNano: now, Kind: kind, Name: name, Fields: fields,
	}
	st.n++
	st.mu.Unlock()
}

// Tail returns up to max buffered events, oldest first (max <= 0 returns
// everything buffered). Nil-safe.
func (r *Recorder) Tail(max int) []Event {
	if r == nil {
		return nil
	}
	var all []Event
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		kept := st.n
		if kept > uint64(len(st.buf)) {
			kept = uint64(len(st.buf))
		}
		for j := uint64(0); j < kept; j++ {
			all = append(all, st.buf[(st.n-kept+j)%uint64(len(st.buf))])
		}
		st.mu.Unlock()
	}
	// Merge the stripes back into global order.
	sortEvents(all)
	if max > 0 && len(all) > max {
		all = all[len(all)-max:]
	}
	return all
}

// sortEvents orders by Seq ascending (insertion sort is fine at ring sizes;
// stripes are already sorted, so runs are long and nearly merged).
func sortEvents(ev []Event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].Seq < ev[j-1].Seq; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// LatestSample returns the newest runtime sample, or nil before the first
// one. Nil-safe.
func (r *Recorder) LatestSample() *Sample {
	if r == nil {
		return nil
	}
	return r.sample.Load()
}

// Snapshot exports the recorder state for JSON serving (max <= 0: all
// buffered events). Nil-safe (zero snapshot).
func (r *Recorder) Snapshot(max int) Snapshot {
	if r == nil {
		return Snapshot{Events: []Event{}}
	}
	ev := r.Tail(max)
	if ev == nil {
		ev = []Event{}
	}
	return Snapshot{
		TotalEvents:       r.TotalEvents(),
		Capacity:          r.Capacity(),
		LastEventUnixNano: r.LastEventUnixNano(),
		Events:            ev,
		RuntimeSample:     r.LatestSample(),
	}
}

// StartSampler begins periodic runtime/metrics sampling (interval <= 0
// takes DefaultSampleInterval): one sample immediately, then one per tick,
// each stored as the latest sample, appended to the ring as a
// "runtime-sample" event and mirrored as nd_flight_* gauges when a registry
// is attached. The returned stop function blocks until the sampler goroutine
// has exited; calling it twice is safe. Nil-safe (returns a no-op stop).
func (r *Recorder) StartSampler(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	r.samplerStop = make(chan struct{})
	r.samplerDone = make(chan struct{})
	stopCh, doneCh := r.samplerStop, r.samplerDone
	r.takeSample()
	go func() {
		defer close(doneCh)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
				r.takeSample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-doneCh
		})
	}
}

// runtimeSampleNames are the runtime/metrics series the sampler reads.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// takeSample reads runtime/metrics into a Sample, publishes it, appends it
// to the ring (as a non-progress event) and updates the gauges.
func (r *Recorder) takeSample() {
	batch := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		batch[i].Name = name
	}
	metrics.Read(batch)
	s := &Sample{TimeUnixNano: time.Now().UnixNano()}
	for _, m := range batch {
		switch m.Name {
		case "/memory/classes/heap/objects:bytes":
			if m.Value.Kind() == metrics.KindUint64 {
				s.HeapBytes = m.Value.Uint64()
			}
		case "/sched/goroutines:goroutines":
			if m.Value.Kind() == metrics.KindUint64 {
				s.Goroutines = int64(m.Value.Uint64())
			}
		case "/gc/cycles/total:gc-cycles":
			if m.Value.Kind() == metrics.KindUint64 {
				s.GCCycles = m.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				h := m.Value.Float64Histogram()
				s.GCPauseP50Sec = histQuantile(h, 0.50)
				s.GCPauseP99Sec = histQuantile(h, 0.99)
			}
		case "/sched/latencies:seconds":
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				h := m.Value.Float64Histogram()
				s.SchedLatencyP50Sec = histQuantile(h, 0.50)
				s.SchedLatencyP99Sec = histQuantile(h, 0.99)
			}
		}
	}
	r.sample.Store(s)
	r.record("runtime-sample", "", map[string]float64{
		"heap_bytes": float64(s.HeapBytes),
		"goroutines": float64(s.Goroutines),
		"gc_cycles":  float64(s.GCCycles),
	}, false)
	if reg := r.reg; reg != nil {
		// nd_ prefix: wall-clock/runtime-derived, excluded from determinism
		// comparisons by the telemetry naming convention.
		reg.Gauge(telemetry.NonDeterministicPrefix + "flight_heap_bytes").Set(float64(s.HeapBytes))
		reg.Gauge(telemetry.NonDeterministicPrefix + "flight_goroutines").Set(float64(s.Goroutines))
		reg.Gauge(telemetry.NonDeterministicPrefix + "flight_gc_cycles_total").Set(float64(s.GCCycles))
		reg.Gauge(telemetry.NonDeterministicPrefix + "flight_gc_pause_p99_seconds").Set(s.GCPauseP99Sec)
		reg.Gauge(telemetry.NonDeterministicPrefix + "flight_sched_latency_p99_seconds").Set(s.SchedLatencyP99Sec)
		reg.Gauge(telemetry.NonDeterministicPrefix + "flight_events_total").Set(float64(r.TotalEvents()))
	}
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram by
// the upper bound of the containing bucket (conservative: the reported
// latency is never below the true quantile). Infinite bounds clamp to the
// nearest finite one.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lastFinite := 0.0
	for i, c := range h.Counts {
		// Bucket i spans [Buckets[i], Buckets[i+1]).
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if !isInf(lo) {
			lastFinite = lo
		}
		cum += c
		if float64(cum) >= rank {
			if isInf(hi) {
				return lastFinite
			}
			return hi
		}
		if !isInf(hi) {
			lastFinite = hi
		}
	}
	return lastFinite
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// --- telemetry.RunObserver ------------------------------------------------

var _ telemetry.RunObserver = (*Recorder)(nil)

// PhaseStarted implements telemetry.RunObserver.
func (r *Recorder) PhaseStarted(name string) {
	r.Record("phase-start", name, nil)
}

// PhaseEnded implements telemetry.RunObserver.
func (r *Recorder) PhaseEnded(name string, cost telemetry.Cost) {
	r.Record("phase-end", name, map[string]float64{
		"measurements": float64(cost.Measurements),
		"vectors":      float64(cost.Vectors),
		"profiles":     float64(cost.Profiles),
		"sim_time_sec": cost.SimTimeSec,
	})
}

// SearchRecorded implements telemetry.RunObserver.
func (r *Recorder) SearchRecorded(measurements, fullRangeBudget int, converged bool) {
	conv := 0.0
	if converged {
		conv = 1
	}
	r.Record("search", "", map[string]float64{
		"measurements": float64(measurements),
		"baseline":     float64(fullRangeBudget),
		"converged":    conv,
	})
}

// CacheLookups implements telemetry.RunObserver.
func (r *Recorder) CacheLookups(hits, misses int64, fullRangeBudget int) {
	r.Record("cache", "", map[string]float64{
		"hits":   float64(hits),
		"misses": float64(misses),
	})
}

// DiskCache implements telemetry.RunObserver.
func (r *Recorder) DiskCache(d telemetry.DiskCacheStats) {
	r.Record("disk-cache", "", map[string]float64{
		"loaded": float64(d.LoadedEntries),
		"hits":   float64(d.Hits),
		"misses": float64(d.Misses),
		"bytes":  float64(d.BytesOnDisk),
	})
}

// Generation implements telemetry.RunObserver.
func (r *Recorder) Generation(gen int, bestWCR float64) {
	r.Record("generation", "", map[string]float64{
		"gen":      float64(gen),
		"best_wcr": bestWCR,
	})
}

// Item implements telemetry.RunObserver.
func (r *Recorder) Item(kind string, done, total int) {
	r.Record("item", kind, map[string]float64{
		"done":  float64(done),
		"total": float64(total),
	})
}

// PoolRun records one worker-pool execution summary (fed from the CLI's
// pool observer, which runs after each pool drains).
func (r *Recorder) PoolRun(workers, tasks int) {
	r.Record("pool", "", map[string]float64{
		"workers": float64(workers),
		"tasks":   float64(tasks),
	})
}

// FleetStream records one fleet stream drain (fed from the CLI's fleet
// observer): queue depth is the out-of-order run-ahead high-water mark,
// utilization and overlap are the stream's worker-occupancy and
// merge-under-measurement ratios.
func (r *Recorder) FleetStream(workers, tasks, maxRunAhead int, utilization, overlapRatio float64) {
	r.Record("fleet", "", map[string]float64{
		"workers":       float64(workers),
		"tasks":         float64(tasks),
		"queue_depth":   float64(maxRunAhead),
		"utilization":   utilization,
		"overlap_ratio": overlapRatio,
	})
}
