package flight

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestRecorderRecordsObserverCallbacks(t *testing.T) {
	r := New(64)
	var o telemetry.RunObserver = r
	o.PhaseStarted("learn")
	o.SearchRecorded(12, 41, true)
	o.CacheLookups(3, 7, 41)
	o.Generation(2, 1.25)
	o.Item("die", 5, 10)
	o.DiskCache(telemetry.DiskCacheStats{LoadedEntries: 9, Hits: 4, Misses: 1, BytesOnDisk: 100})
	o.PhaseEnded("learn", telemetry.Cost{Measurements: 100, Vectors: 2000, SimTimeSec: 1.5})
	r.PoolRun(4, 16)

	ev := r.Tail(0)
	if len(ev) != 8 {
		t.Fatalf("Tail returned %d events, want 8", len(ev))
	}
	kinds := make([]string, len(ev))
	for i, e := range ev {
		kinds[i] = e.Kind
	}
	want := []string{"phase-start", "search", "cache", "generation", "item", "disk-cache", "phase-end", "pool"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d kind = %q, want %q (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
	// Events must come back in global order.
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("events out of order: seq[%d]=%d <= seq[%d]=%d", i, ev[i].Seq, i-1, ev[i-1].Seq)
		}
	}
	if ev[6].Fields["measurements"] != 100 {
		t.Fatalf("phase-end measurements = %v, want 100", ev[6].Fields["measurements"])
	}
	if r.TotalEvents() != 8 {
		t.Fatalf("TotalEvents = %d, want 8", r.TotalEvents())
	}
	if r.LastEventUnixNano() == 0 {
		t.Fatal("LastEventUnixNano = 0 after progress events")
	}
}

func TestRecorderRingBounds(t *testing.T) {
	r := New(32)
	cap := r.Capacity()
	for i := 0; i < 10*cap; i++ {
		r.Record("item", "die", nil)
	}
	ev := r.Tail(0)
	if len(ev) != cap {
		t.Fatalf("ring retained %d events, want capacity %d", len(ev), cap)
	}
	if r.TotalEvents() != uint64(10*cap) {
		t.Fatalf("TotalEvents = %d, want %d", r.TotalEvents(), 10*cap)
	}
	// The retained tail must be the newest events.
	if ev[len(ev)-1].Seq != uint64(10*cap) {
		t.Fatalf("newest retained seq = %d, want %d", ev[len(ev)-1].Seq, 10*cap)
	}
	// Tail(max) trims from the old end.
	tail := r.Tail(5)
	if len(tail) != 5 {
		t.Fatalf("Tail(5) returned %d events", len(tail))
	}
	if tail[4].Seq != uint64(10*cap) {
		t.Fatalf("Tail(5) newest seq = %d, want %d", tail[4].Seq, 10*cap)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New(128)
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record("item", "die", map[string]float64{"done": float64(i)})
				if i%100 == 0 {
					r.Tail(16)
					r.Snapshot(8)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.TotalEvents(); got != goroutines*per {
		t.Fatalf("TotalEvents = %d, want %d", got, goroutines*per)
	}
	ev := r.Tail(0)
	if len(ev) != r.Capacity() {
		t.Fatalf("retained %d events, want %d", len(ev), r.Capacity())
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("events out of order after concurrent writes")
		}
	}
}

func TestSamplerPopulatesSampleAndGauges(t *testing.T) {
	r := New(64)
	reg := telemetry.NewRegistry()
	r.ExportTo(reg)
	stop := r.StartSampler(10 * time.Millisecond)
	defer stop()

	// The first sample is synchronous, so it is already there.
	s := r.LatestSample()
	if s == nil {
		t.Fatal("no sample immediately after StartSampler")
	}
	if s.HeapBytes == 0 {
		t.Error("sample heap_bytes = 0")
	}
	if s.Goroutines <= 0 {
		t.Errorf("sample goroutines = %d, want > 0", s.Goroutines)
	}

	snap := reg.Snapshot()
	if v, ok := snap.Gauges["nd_flight_heap_bytes"]; !ok || v <= 0 {
		t.Fatalf("nd_flight_heap_bytes gauge missing or zero in snapshot: %+v", snap.Gauges)
	}

	// Sampler events are quarantined behind the nd_ naming convention and
	// must not count as run progress (the stall watchdog relies on this).
	if r.LastEventUnixNano() != 0 {
		t.Fatal("runtime-sample advanced LastEventUnixNano; stall watchdog would never fire")
	}

	// Wait for at least one ticked sample, then stop twice (idempotent).
	deadline := time.Now().Add(2 * time.Second)
	for r.TotalEvents() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.TotalEvents() < 2 {
		t.Fatalf("sampler recorded %d events in 2s, want >= 2", r.TotalEvents())
	}
	stop()
	stop()
}

func TestSnapshotJSONShape(t *testing.T) {
	r := New(32)
	r.PhaseStarted("learn")
	r.takeSample()
	b, err := json.Marshal(r.Snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"total_events"`, `"capacity"`, `"events"`, `"runtime_sample"`, `"heap_bytes"`, `"phase-start"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("snapshot JSON missing %s: %s", key, b)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record("x", "", nil)
	r.PhaseStarted("p")
	r.PhaseEnded("p", telemetry.Cost{})
	r.SearchRecorded(1, 2, true)
	r.CacheLookups(1, 2, 3)
	r.DiskCache(telemetry.DiskCacheStats{})
	r.Generation(1, 0)
	r.Item("die", 1, 2)
	r.PoolRun(1, 2)
	r.ExportTo(nil)
	if r.Tail(0) != nil {
		t.Error("nil Tail not nil")
	}
	if r.Capacity() != 0 || r.TotalEvents() != 0 || r.LastEventUnixNano() != 0 {
		t.Error("nil accessors not zero")
	}
	if r.LatestSample() != nil {
		t.Error("nil LatestSample not nil")
	}
	snap := r.Snapshot(10)
	if snap.Events == nil || len(snap.Events) != 0 {
		t.Error("nil Snapshot events should be empty non-nil")
	}
	stop := r.StartSampler(time.Second)
	stop()
}

func TestHistQuantileEmptyAndInf(t *testing.T) {
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}
}
