package pdn_test

import (
	"fmt"

	"repro/internal/dut"
	"repro/internal/pdn"
)

// ExampleNetwork_Simulate integrates the power delivery network over a
// burst pattern and reports the droop peak.
func ExampleNetwork_Simulate() {
	n := pdn.Default()
	fmt.Printf("network: f0 %.1f MHz, damping ζ %.2f\n", n.ResonantHz()/1e6, n.DampingRatio())

	// Single-cycle full-activity bursts every other cycle: a 2-cycle
	// period, exactly the network's resonance at a 100 MHz bus clock.
	records := make([]dut.CycleRecord, 400)
	for i := range records {
		if i%2 == 0 {
			records[i] = dut.CycleRecord{Cycle: i, ATD: 1, Toggle: 1}
		}
	}
	res, err := n.Simulate(records, 1.8, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("resonant excitation droops the rail by more than 1 V: %v\n", res.PeakDroopV > 1)

	// Continuous full activity draws twice the energy but stays far from
	// that peak — resonance, not power, digs the hole.
	for i := range records {
		records[i] = dut.CycleRecord{Cycle: i, ATD: 1, Toggle: 1}
	}
	cont, err := n.Simulate(records, 1.8, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("continuous peak is below half the resonant peak: %v\n",
		cont.PeakDroopV < res.PeakDroopV/2)
	// Output:
	// network: f0 50.3 MHz, damping ζ 0.08
	// resonant excitation droops the rail by more than 1 V: true
	// continuous peak is below half the resonant peak: true
}
