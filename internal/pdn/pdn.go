// Package pdn simulates the power delivery network of the device under
// test: a series R–L supply path into the on-die decoupling capacitance,
// excited by the per-cycle load current a test sequence draws. This is the
// detailed-analysis counterpart of the behavioural droop terms in the
// device model — the paper's companion works (refs. [9] and [10], the
// authors' NN+GA worst-case power-supply-noise generators) hunt exactly
// the patterns that resonate this network.
//
// The flow uses pdn on the failure-analysis path: take the cycle trace of
// a worst-case test (dut.Trace), simulate the die voltage waveform, and
// locate the droop peak the pattern provokes.
package pdn

import (
	"errors"
	"math"

	"repro/internal/dut"
)

// Network is the lumped PDN: V_supply — R — L — (die node) — C to ground,
// with the load current drawn from the die node.
//
//	L·di/dt = Vsupply − v_die − R·i
//	C·dv/dt = i − i_load
type Network struct {
	RSeriesOhm float64 // series resistance of the supply path
	LSeriesH   float64 // series inductance (package + bond)
	CDecapF    float64 // on-die decoupling capacitance

	ILeakA float64 // constant leakage current
	IMaxA  float64 // dynamic current of a fully switching cycle

	// SubSteps is the number of integration sub-steps per bus cycle
	// (default 32); the resonance sits near the cycle rate, so cycle-level
	// integration would alias.
	SubSteps int
}

// Default returns a plausible 140 nm-era network: ~50 mΩ, 1 nH, 10 nF →
// resonance ≈ 50 MHz, mildly underdamped.
func Default() Network {
	return Network{
		RSeriesOhm: 0.05,
		LSeriesH:   1e-9,
		CDecapF:    10e-9,
		ILeakA:     0.01,
		IMaxA:      1.2,
		SubSteps:   32,
	}
}

// Validate reports non-physical configurations.
func (n Network) Validate() error {
	if n.RSeriesOhm < 0 || n.LSeriesH <= 0 || n.CDecapF <= 0 {
		return errors.New("pdn: R must be ≥ 0 and L, C > 0")
	}
	if n.IMaxA < 0 || n.ILeakA < 0 {
		return errors.New("pdn: currents must be non-negative")
	}
	return nil
}

// ResonantHz returns the network's natural frequency 1/(2π√(LC)).
func (n Network) ResonantHz() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(n.LSeriesH*n.CDecapF))
}

// DampingRatio returns ζ = (R/2)·√(C/L); below 1 the network rings.
func (n Network) DampingRatio() float64 {
	return n.RSeriesOhm / 2 * math.Sqrt(n.CDecapF/n.LSeriesH)
}

// Sample is one integration point of the die-voltage waveform.
type Sample struct {
	TimeNS float64
	VDieV  float64
	ILoadA float64
}

// Result is a simulated waveform plus its droop analysis.
type Result struct {
	Samples []Sample
	// PeakDroopV is the maximum voltage sag below the supply.
	PeakDroopV float64
	// PeakAtNS is the time of the deepest sag.
	PeakAtNS float64
	// PeakCycle is the bus cycle during which the deepest sag occurred.
	PeakCycle int
	// MeanDroopV is the time-averaged sag.
	MeanDroopV float64
}

// CycleCurrent maps one trace record to the dynamic load current of that
// cycle: leakage plus the switching term scaled by the cycle's combined
// address/data activity.
func (n Network) CycleCurrent(r dut.CycleRecord) float64 {
	activity := (r.ATD + r.Toggle) / 2
	return n.ILeakA + n.IMaxA*activity
}

// Simulate integrates the network over a cycle trace at the given supply
// and bus clock, using semi-implicit Euler at SubSteps per cycle. The
// load current is held constant within each cycle (the per-cycle average
// the trace provides).
func (n Network) Simulate(records []dut.CycleRecord, vddV, clockMHz float64) (Result, error) {
	if err := n.Validate(); err != nil {
		return Result{}, err
	}
	if len(records) == 0 {
		return Result{}, errors.New("pdn: empty trace")
	}
	if clockMHz <= 0 {
		return Result{}, errors.New("pdn: clock must be positive")
	}
	sub := n.SubSteps
	if sub < 1 {
		sub = 32
	}
	cycleS := 1 / (clockMHz * 1e6)
	dt := cycleS / float64(sub)

	res := Result{Samples: make([]Sample, 0, len(records)*sub)}
	// Start at equilibrium for the leakage current.
	v := vddV - n.RSeriesOhm*n.ILeakA
	iL := n.ILeakA

	var droopSum float64
	steps := 0
	for ci, r := range records {
		iLoad := n.CycleCurrent(r)
		for s := 0; s < sub; s++ {
			// Semi-implicit Euler: update the inductor current first,
			// then the capacitor voltage with the fresh current.
			iL += dt / n.LSeriesH * (vddV - v - n.RSeriesOhm*iL)
			v += dt / n.CDecapF * (iL - iLoad)

			t := (float64(ci) + float64(s+1)/float64(sub)) * cycleS * 1e9
			res.Samples = append(res.Samples, Sample{TimeNS: t, VDieV: v, ILoadA: iLoad})

			droop := vddV - v
			droopSum += droop
			steps++
			if droop > res.PeakDroopV {
				res.PeakDroopV = droop
				res.PeakAtNS = t
				res.PeakCycle = ci
			}
		}
	}
	res.MeanDroopV = droopSum / float64(steps)
	return res, nil
}

// StepResponse simulates the response to a constant current step of the
// given magnitude over the duration — the classic characterization of the
// network itself (used by tests and by tooling that reports the network's
// Q). Returns the waveform result.
func (n Network) StepResponse(vddV, currentA float64, durationNS float64, clockMHz float64) (Result, error) {
	if durationNS <= 0 {
		return Result{}, errors.New("pdn: duration must be positive")
	}
	cycles := int(durationNS*clockMHz*1e-3) + 1
	activity := 0.0
	if n.IMaxA > 0 {
		activity = (currentA - n.ILeakA) / n.IMaxA
	}
	records := make([]dut.CycleRecord, cycles)
	for i := range records {
		records[i] = dut.CycleRecord{Cycle: i, ATD: activity, Toggle: activity}
	}
	return n.Simulate(records, vddV, clockMHz)
}

// WorstBurstSpacing sweeps burst periods (in cycles) and returns the
// spacing that provokes the deepest droop for a fixed per-burst energy —
// the resonance search a worst-case pattern generator performs implicitly.
// Periods from 1 (continuous) to maxPeriod are tried with bursts of the
// given length and full activity.
func (n Network) WorstBurstSpacing(vddV, clockMHz float64, burstLen, maxPeriod, totalCycles int) (bestPeriod int, peakDroopV float64, err error) {
	if burstLen < 1 || maxPeriod < 1 || totalCycles < maxPeriod {
		return 0, 0, errors.New("pdn: invalid burst sweep parameters")
	}
	for period := 1; period <= maxPeriod; period++ {
		records := make([]dut.CycleRecord, totalCycles)
		for i := range records {
			phase := i % (burstLen + period)
			if phase < burstLen {
				records[i] = dut.CycleRecord{Cycle: i, ATD: 1, Toggle: 1}
			} else {
				records[i] = dut.CycleRecord{Cycle: i}
			}
		}
		res, err := n.Simulate(records, vddV, clockMHz)
		if err != nil {
			return 0, 0, err
		}
		if res.PeakDroopV > peakDroopV {
			peakDroopV = res.PeakDroopV
			bestPeriod = period
		}
	}
	return bestPeriod, peakDroopV, nil
}
