package pdn

import (
	"math"
	"testing"

	"repro/internal/dut"
	"repro/internal/testgen"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default network invalid: %v", err)
	}
	bad := Default()
	bad.LSeriesH = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero inductance accepted")
	}
	bad = Default()
	bad.CDecapF = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative capacitance accepted")
	}
	bad = Default()
	bad.IMaxA = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative current accepted")
	}
}

func TestResonanceAndDamping(t *testing.T) {
	n := Default()
	// 1 nH with 10 nF → f0 = 1/(2π√(1e-9·1e-8)) ≈ 50.3 MHz.
	if f := n.ResonantHz() / 1e6; math.Abs(f-50.3) > 1 {
		t.Errorf("resonant frequency %.1f MHz, want ≈50.3", f)
	}
	if z := n.DampingRatio(); z <= 0 || z >= 1 {
		t.Errorf("damping ratio %g; default network should be underdamped", z)
	}
}

func TestSimulateValidation(t *testing.T) {
	n := Default()
	if _, err := n.Simulate(nil, 1.8, 100); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := n.Simulate(make([]dut.CycleRecord, 1), 1.8, 0); err == nil {
		t.Error("zero clock accepted")
	}
	bad := Default()
	bad.LSeriesH = 0
	if _, err := bad.Simulate(make([]dut.CycleRecord, 1), 1.8, 100); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestDCStepSettlesToOhmicDrop(t *testing.T) {
	n := Default()
	const i = 0.8
	res, err := n.StepResponse(1.8, i, 2000, 100) // 2 µs ≫ settling time
	if err != nil {
		t.Fatal(err)
	}
	// Steady state: droop = R·I (relative to the leakage equilibrium the
	// simulation starts at, the extra droop is R·(I−Ileak)).
	final := res.Samples[len(res.Samples)-1]
	wantV := 1.8 - n.RSeriesOhm*i
	if math.Abs(final.VDieV-wantV) > 0.002 {
		t.Errorf("steady-state die voltage %.4f, want %.4f", final.VDieV, wantV)
	}
}

func TestStepOvershootsThenRings(t *testing.T) {
	// An underdamped network's first droop peak exceeds the DC value and
	// the waveform then decays toward it.
	n := Default()
	const i = 1.0
	res, err := n.StepResponse(1.8, i, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	dcDroop := n.RSeriesOhm * (i - n.ILeakA)
	if res.PeakDroopV <= dcDroop*1.5 {
		t.Errorf("peak droop %.4f shows no resonant overshoot above DC %.4f", res.PeakDroopV, dcDroop)
	}
	// The peak happens early (within the first resonance period ≈ 20 ns).
	if res.PeakAtNS > 40 {
		t.Errorf("first droop peak at %.1f ns, expected within ≈2 periods", res.PeakAtNS)
	}
}

func TestZeroActivityNoDroop(t *testing.T) {
	n := Default()
	records := make([]dut.CycleRecord, 100) // all idle
	res, err := n.Simulate(records, 1.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Idle trace draws only leakage, which the initial condition already
	// accounts for: droop beyond R·Ileak must be negligible.
	if res.PeakDroopV > n.RSeriesOhm*n.ILeakA+0.001 {
		t.Errorf("idle trace droop %.5f V", res.PeakDroopV)
	}
}

func TestMoreActivityMoreDroop(t *testing.T) {
	n := Default()
	mk := func(act float64) []dut.CycleRecord {
		r := make([]dut.CycleRecord, 200)
		for i := range r {
			r[i] = dut.CycleRecord{ATD: act, Toggle: act}
		}
		return r
	}
	low, err := n.Simulate(mk(0.3), 1.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	high, err := n.Simulate(mk(0.9), 1.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if high.PeakDroopV <= low.PeakDroopV {
		t.Errorf("droop not increasing with activity: %.4f vs %.4f", low.PeakDroopV, high.PeakDroopV)
	}
	if high.MeanDroopV <= low.MeanDroopV {
		t.Error("mean droop not increasing with activity")
	}
}

func TestResonantBurstSpacingBeatsContinuous(t *testing.T) {
	// The resonance search: single-cycle bursts with a one-cycle gap form
	// a 2-cycle period — exactly the 50 MHz resonance at a 100 MHz clock —
	// and must provoke a far deeper droop peak than continuous full
	// activity, despite drawing half the average current. This is the
	// physical mechanism the paper's companion PSN generators exploit.
	n := Default()
	best, peak, err := n.WorstBurstSpacing(1.8, 100, 1, 8, 600)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("worst burst gap %d cycles, want 1 (the resonant 2-cycle period)", best)
	}
	records := make([]dut.CycleRecord, 600)
	for i := range records {
		records[i] = dut.CycleRecord{ATD: 1, Toggle: 1}
	}
	cont, err := n.Simulate(records, 1.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= cont.PeakDroopV*2 {
		t.Errorf("resonant peak %.4f V does not clearly amplify over continuous %.4f V",
			peak, cont.PeakDroopV)
	}
	// Sanity: the continuous mean droop is still larger (more energy).
	contMean := cont.MeanDroopV
	resRecords := make([]dut.CycleRecord, 600)
	for i := range resRecords {
		if i%2 == 0 {
			resRecords[i] = dut.CycleRecord{ATD: 1, Toggle: 1}
		}
	}
	resRes, err := n.Simulate(resRecords, 1.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if resRes.MeanDroopV >= contMean {
		t.Errorf("resonant mean droop %.4f not below continuous %.4f", resRes.MeanDroopV, contMean)
	}
}

func TestWorstBurstSpacingValidation(t *testing.T) {
	n := Default()
	if _, _, err := n.WorstBurstSpacing(1.8, 100, 0, 10, 100); err == nil {
		t.Error("zero burst length accepted")
	}
	if _, _, err := n.WorstBurstSpacing(1.8, 100, 4, 200, 100); err == nil {
		t.Error("total shorter than period accepted")
	}
}

func TestSimulateOnRealTrace(t *testing.T) {
	// End to end with the device model: the coordinated worst-case test
	// must droop the PDN more than a calm test.
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	n := Default()
	cond := testgen.NominalConditions()

	calm := make(testgen.Sequence, 400)
	for i := range calm {
		calm[i] = testgen.Vector{Op: testgen.OpRead, Addr: uint32(i % 16)}
	}
	calmTrace, _, err := dev.Trace(testgen.Test{Name: "calm", Seq: calm, Cond: cond})
	if err != nil {
		t.Fatal(err)
	}
	words := dev.Geometry().Words()
	hot := make(testgen.Sequence, 0, 400)
	for i := 0; i < 100; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		hot = append(hot,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	hotTrace, _, err := dev.Trace(testgen.Test{Name: "hot", Seq: hot, Cond: cond})
	if err != nil {
		t.Fatal(err)
	}

	calmRes, err := n.Simulate(calmTrace, cond.VddV, cond.ClockMHz)
	if err != nil {
		t.Fatal(err)
	}
	hotRes, err := n.Simulate(hotTrace, cond.VddV, cond.ClockMHz)
	if err != nil {
		t.Fatal(err)
	}
	if hotRes.PeakDroopV <= calmRes.PeakDroopV {
		t.Errorf("worst-case trace droop %.4f not above calm %.4f",
			hotRes.PeakDroopV, calmRes.PeakDroopV)
	}
	if hotRes.PeakCycle < 0 || hotRes.PeakCycle >= len(hotTrace) {
		t.Errorf("peak cycle %d out of trace range", hotRes.PeakCycle)
	}
}

func TestSubStepConvergence(t *testing.T) {
	// Halving the step size must not change the peak droop materially —
	// the integrator is converged at the default resolution.
	coarse := Default()
	coarse.SubSteps = 32
	fine := Default()
	fine.SubSteps = 128
	records := make([]dut.CycleRecord, 300)
	for i := range records {
		if i%7 < 3 {
			records[i] = dut.CycleRecord{ATD: 1, Toggle: 1}
		}
	}
	rc, err := coarse.Simulate(records, 1.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fine.Simulate(records, 1.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rc.PeakDroopV-rf.PeakDroopV) / rf.PeakDroopV; rel > 0.05 {
		t.Errorf("peak droop changes %.1f%% between 32 and 128 sub-steps", rel*100)
	}
}
