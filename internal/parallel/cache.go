package parallel

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// MemoCache memoizes scalar measurement results keyed by a 64-bit
// structural fingerprint — the substrate of the "never re-measure an
// unchanged test" rule. The GA fitness engine keys it with
// testgen.Test.Fingerprint so elites, clones and migrants that reappear in
// later generations reuse their measured fitness instead of spending ATE
// measurements again.
//
// The entry map is sharded into a power-of-two number of lock stripes
// selected by the low fingerprint bits, so a large worker fleet doing
// concurrent lookups never serializes on a single mutex. Sharding is pure
// mechanics: hit/miss/dropped accounting stays exact (atomic counters) and
// the retained set under a SetLimit capacity is a pure function of the
// Put order, identical at 1 stripe and at N (pinned by the shard-count
// invariance property test).
//
// Reads and writes are safe from any goroutine. Determinism callers care
// about: resolve lookups and insert results at deterministic points (for
// batch engines, before dispatch and after the batch completes in task
// order), not concurrently from racing workers.
type MemoCache struct {
	shards []memoShard
	mask   uint64

	// count is the total entry count across shards; Put consults it for
	// the SetLimit capacity decision so the retained set does not depend
	// on how keys distribute over stripes.
	count atomic.Int64
	limit atomic.Int64 // 0 = unbounded

	hits    atomic.Int64
	miss    atomic.Int64
	dropped atomic.Int64
}

// memoShard is one lock stripe. Padding keeps neighbouring stripes off the
// same cache line under write-heavy contention.
type memoShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
	_  [24]byte
}

// defaultStripes sizes the stripe count for the machine: the next power of
// two at or above 4× the CPU count, capped at 256. One stripe per few
// concurrent workers keeps collision probability low without bloating the
// empty cache.
func defaultStripes() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	return 1 << bits.Len(uint(n-1))
}

// NewMemoCache returns an empty, unbounded cache with a machine-sized
// stripe count.
func NewMemoCache() *MemoCache {
	return NewMemoCacheStripes(defaultStripes())
}

// NewMemoCacheStripes returns an empty, unbounded cache with exactly n lock
// stripes (rounded up to the next power of two; values below 1 select 1).
// Behaviour is identical for every stripe count; the knob exists for the
// invariance tests and for callers that know their concurrency profile.
func NewMemoCacheStripes(n int) *MemoCache {
	if n < 1 {
		n = 1
	}
	n = 1 << bits.Len(uint(n-1))
	c := &MemoCache{shards: make([]memoShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]float64)
	}
	return c
}

// shard selects the stripe for a key. The fingerprints are FNV-1a outputs,
// so the low bits are already well mixed.
func (c *MemoCache) shard(key uint64) *memoShard {
	return &c.shards[key&c.mask]
}

// Stripes returns the number of lock stripes.
func (c *MemoCache) Stripes() int { return len(c.shards) }

// SetLimit caps the entry count at n (n <= 0 removes the cap). At
// capacity, Put rejects *new* keys instead of evicting old ones:
// random-replacement eviction would make which measurements get memoized —
// and therefore the hit/miss cost accounting — depend on map iteration
// order, while reject-at-capacity keeps the retained set a pure function
// of insertion order. Overwrites of already-present keys always succeed.
// Entries beyond an already-exceeded new cap stay until Reset.
func (c *MemoCache) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	c.limit.Store(int64(n))
}

// Limit returns the current entry cap (0 = unbounded).
func (c *MemoCache) Limit() int {
	return int(c.limit.Load())
}

// Get returns the memoized value for key, counting a hit or a miss.
func (c *MemoCache) Get(key uint64) (float64, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return v, ok
}

// Put memoizes value under key, overwriting any previous entry. At the
// SetLimit capacity a new key is rejected (counted by Dropped) so the
// caller simply re-measures it next time. The capacity decision reads the
// cross-shard total, so the retained set is the same no matter how keys
// stripe.
func (c *MemoCache) Put(key uint64, value float64) {
	s := c.shard(key)
	s.mu.Lock()
	if _, exists := s.m[key]; exists {
		s.m[key] = value
		s.mu.Unlock()
		return
	}
	if limit := c.limit.Load(); limit > 0 {
		// Reserve a slot before inserting: concurrent Puts each CAS their
		// own increment, so the cap is never overshot even under racing
		// writers on different stripes.
		for {
			cur := c.count.Load()
			if cur >= limit {
				s.mu.Unlock()
				c.dropped.Add(1)
				return
			}
			if c.count.CompareAndSwap(cur, cur+1) {
				break
			}
		}
	} else {
		c.count.Add(1)
	}
	s.m[key] = value
	s.mu.Unlock()
}

// GetBatch resolves keys[i] into vals[i]/ok[i] for every i, equivalent to a
// loop of Get calls but grouped by lock stripe: the keys are visited in
// stripe order so each stripe's lock is taken once per batch instead of
// once per key — the hot-resolve form used by the fitness and lot engines,
// whose serial pre-dispatch resolve touches a whole generation or window at
// a time. Hit/miss accounting is identical to the sequential loop (one hit
// or miss per key, added in bulk). vals and ok must be at least as long as
// keys.
func (c *MemoCache) GetBatch(keys []uint64, vals []float64, ok []bool) {
	if len(keys) == 0 {
		return
	}
	if len(c.shards) == 1 {
		s := &c.shards[0]
		var hits int64
		s.mu.RLock()
		for i, k := range keys {
			v, found := s.m[k]
			vals[i], ok[i] = v, found
			if found {
				hits++
			}
		}
		s.mu.RUnlock()
		c.hits.Add(hits)
		c.miss.Add(int64(len(keys)) - hits)
		return
	}
	// Order the key indices by stripe (counting sort over the stripe index:
	// O(keys + stripes), no comparison sort) and walk each stripe's run
	// under one RLock.
	order, starts := c.stripeOrder(keys)
	var hits int64
	for sIdx := range c.shards {
		lo, hi := starts[sIdx], starts[sIdx+1]
		if lo == hi {
			continue
		}
		s := &c.shards[sIdx]
		s.mu.RLock()
		for _, i := range order[lo:hi] {
			v, found := s.m[keys[i]]
			vals[i], ok[i] = v, found
			if found {
				hits++
			}
		}
		s.mu.RUnlock()
	}
	c.hits.Add(hits)
	c.miss.Add(int64(len(keys)) - hits)
}

// PutBatch memoizes keys[i] → vals[i] for every i. Unbounded caches take
// the stripe-grouped fast path (one Lock per touched stripe; duplicate keys
// within the batch keep their slice order, so the last write wins exactly
// like sequential Puts). Under a SetLimit capacity the retained set is
// defined as a pure function of the Put order, which stripe grouping would
// reorder — so capped caches fall back to sequential Puts and stay
// bit-compatible.
func (c *MemoCache) PutBatch(keys []uint64, vals []float64) {
	if len(keys) == 0 {
		return
	}
	if c.limit.Load() > 0 {
		for i, k := range keys {
			c.Put(k, vals[i])
		}
		return
	}
	if len(c.shards) == 1 {
		s := &c.shards[0]
		var added int64
		s.mu.Lock()
		for i, k := range keys {
			if _, exists := s.m[k]; !exists {
				added++
			}
			s.m[k] = vals[i]
		}
		s.mu.Unlock()
		c.count.Add(added)
		return
	}
	order, starts := c.stripeOrder(keys)
	var added int64
	for sIdx := range c.shards {
		lo, hi := starts[sIdx], starts[sIdx+1]
		if lo == hi {
			continue
		}
		s := &c.shards[sIdx]
		s.mu.Lock()
		for _, i := range order[lo:hi] {
			if _, exists := s.m[keys[i]]; !exists {
				added++
			}
			s.m[keys[i]] = vals[i]
		}
		s.mu.Unlock()
	}
	c.count.Add(added)
}

// stripeOrder counting-sorts the key indices by stripe: order holds the
// indices grouped by stripe (slice order preserved within a stripe, so
// same-key writes stay ordered), starts[s]..starts[s+1] is stripe s's run.
func (c *MemoCache) stripeOrder(keys []uint64) (order []int, starts []int) {
	counts := make([]int, len(c.shards)+1)
	for _, k := range keys {
		counts[(k&c.mask)+1]++
	}
	for s := 1; s < len(counts); s++ {
		counts[s] += counts[s-1]
	}
	starts = append([]int(nil), counts...)
	order = make([]int, len(keys))
	for i, k := range keys {
		s := k & c.mask
		order[counts[s]] = i
		counts[s]++
	}
	return order, starts
}

// Len returns the number of memoized entries.
func (c *MemoCache) Len() int {
	return int(c.count.Load())
}

// Hits returns how many Get calls found an entry.
func (c *MemoCache) Hits() int64 { return c.hits.Load() }

// Misses returns how many Get calls found nothing.
func (c *MemoCache) Misses() int64 { return c.miss.Load() }

// Dropped returns how many Put calls were rejected at the SetLimit
// capacity.
func (c *MemoCache) Dropped() int64 { return c.dropped.Load() }

// Range calls fn for every memoized entry until fn returns false. The
// iteration order is unspecified (it walks stripes and Go maps); callers
// needing a stable order must sort the keys themselves. Do not call Get,
// Put or Reset from fn.
func (c *MemoCache) Range(fn func(key uint64, value float64) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Reset empties the cache and zeroes the hit/miss/dropped counters,
// keeping the configured limit. Batch engines call it between independent
// runs that must not share measured values.
func (c *MemoCache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.m)
		s.mu.Unlock()
	}
	c.count.Store(0)
	c.hits.Store(0)
	c.miss.Store(0)
	c.dropped.Store(0)
}
