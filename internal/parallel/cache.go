package parallel

import (
	"sync"
	"sync/atomic"
)

// MemoCache memoizes scalar measurement results keyed by a 64-bit
// structural fingerprint — the substrate of the "never re-measure an
// unchanged test" rule. The GA fitness engine keys it with
// testgen.Test.Fingerprint so elites, clones and migrants that reappear in
// later generations reuse their measured fitness instead of spending ATE
// measurements again.
//
// Reads and writes are safe from any goroutine. Determinism callers care
// about: resolve lookups and insert results at deterministic points (for
// batch engines, before dispatch and after the batch completes in task
// order), not concurrently from racing workers.
type MemoCache struct {
	mu      sync.RWMutex
	m       map[uint64]float64
	limit   int // 0 = unbounded
	hits    atomic.Int64
	miss    atomic.Int64
	dropped atomic.Int64
}

// NewMemoCache returns an empty, unbounded cache.
func NewMemoCache() *MemoCache {
	return &MemoCache{m: make(map[uint64]float64)}
}

// SetLimit caps the entry count at n (n <= 0 removes the cap). At
// capacity, Put rejects *new* keys instead of evicting old ones:
// random-replacement eviction would make which measurements get memoized —
// and therefore the hit/miss cost accounting — depend on map iteration
// order, while reject-at-capacity keeps the retained set a pure function
// of insertion order. Overwrites of already-present keys always succeed.
// Entries beyond an already-exceeded new cap stay until Reset.
func (c *MemoCache) SetLimit(n int) {
	c.mu.Lock()
	if n < 0 {
		n = 0
	}
	c.limit = n
	c.mu.Unlock()
}

// Limit returns the current entry cap (0 = unbounded).
func (c *MemoCache) Limit() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.limit
}

// Get returns the memoized value for key, counting a hit or a miss.
func (c *MemoCache) Get(key uint64) (float64, bool) {
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return v, ok
}

// Put memoizes value under key, overwriting any previous entry. At the
// SetLimit capacity a new key is rejected (counted by Dropped) so the
// caller simply re-measures it next time.
func (c *MemoCache) Put(key uint64, value float64) {
	c.mu.Lock()
	if c.limit > 0 && len(c.m) >= c.limit {
		if _, exists := c.m[key]; !exists {
			c.mu.Unlock()
			c.dropped.Add(1)
			return
		}
	}
	c.m[key] = value
	c.mu.Unlock()
}

// Len returns the number of memoized entries.
func (c *MemoCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Hits returns how many Get calls found an entry.
func (c *MemoCache) Hits() int64 { return c.hits.Load() }

// Misses returns how many Get calls found nothing.
func (c *MemoCache) Misses() int64 { return c.miss.Load() }

// Dropped returns how many Put calls were rejected at the SetLimit
// capacity.
func (c *MemoCache) Dropped() int64 { return c.dropped.Load() }

// Reset empties the cache and zeroes the hit/miss/dropped counters,
// keeping the configured limit. Batch engines call it between independent
// runs that must not share measured values.
func (c *MemoCache) Reset() {
	c.mu.Lock()
	clear(c.m)
	c.mu.Unlock()
	c.hits.Store(0)
	c.miss.Store(0)
	c.dropped.Store(0)
}
