package parallel

import (
	"sync"
	"sync/atomic"
)

// MemoCache memoizes scalar measurement results keyed by a 64-bit
// structural fingerprint — the substrate of the "never re-measure an
// unchanged test" rule. The GA fitness engine keys it with
// testgen.Test.Fingerprint so elites, clones and migrants that reappear in
// later generations reuse their measured fitness instead of spending ATE
// measurements again.
//
// Reads and writes are safe from any goroutine. Determinism callers care
// about: resolve lookups and insert results at deterministic points (for
// batch engines, before dispatch and after the batch completes in task
// order), not concurrently from racing workers.
type MemoCache struct {
	mu   sync.RWMutex
	m    map[uint64]float64
	hits atomic.Int64
	miss atomic.Int64
}

// NewMemoCache returns an empty cache.
func NewMemoCache() *MemoCache {
	return &MemoCache{m: make(map[uint64]float64)}
}

// Get returns the memoized value for key, counting a hit or a miss.
func (c *MemoCache) Get(key uint64) (float64, bool) {
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return v, ok
}

// Put memoizes value under key, overwriting any previous entry.
func (c *MemoCache) Put(key uint64, value float64) {
	c.mu.Lock()
	c.m[key] = value
	c.mu.Unlock()
}

// Len returns the number of memoized entries.
func (c *MemoCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Hits returns how many Get calls found an entry.
func (c *MemoCache) Hits() int64 { return c.hits.Load() }

// Misses returns how many Get calls found nothing.
func (c *MemoCache) Misses() int64 { return c.miss.Load() }
