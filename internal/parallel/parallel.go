// Package parallel is the shared deterministic parallel-execution substrate
// of the characterization system. Every hot loop that fans measurement or
// training work across goroutines — GA fitness batches, ensemble member
// training, shmoo sweeps, lot screens, Table-1 replication — runs on the
// bounded worker pool defined here.
//
// The determinism contract: work is identified by a task index, results are
// written into index-addressed slots, and any per-task randomness derives
// from a seed of the form baseSeed + taskIndex. Worker-owned resources
// (forked tester insertions) are rewound to a task-hermetic state at the
// start of every task, so the output is bit-identical regardless of the
// worker count or the scheduling order — workers == 1 executes the very
// same task code inline, without spawning goroutines.
package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Observer receives a post-run summary of one pool execution: the number of
// workers started and how many tasks each processed. The split of tasks
// across workers depends on goroutine scheduling, so observers must treat
// the data as diagnostic (telemetry reports file it under their
// non-deterministic section); the task *results* remain bit-identical
// regardless. Observers are invoked after all workers have finished, on the
// calling goroutine.
type Observer func(workers int, tasksPerWorker []int)

var observer atomic.Pointer[Observer]

// SetObserver installs the process-wide pool observer (nil uninstalls).
// Intended for top-level run instrumentation (CLI telemetry), not
// libraries: there is one slot, and tests that run pools concurrently
// should leave it unset.
func SetObserver(fn Observer) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

// Workers resolves a parallelism knob: values below 1 select one worker per
// available CPU (runtime.GOMAXPROCS), anything else is taken literally.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Bound resolves the knob and caps it at the task count, returning the
// number of workers Run will actually start.
func Bound(workers, tasks int) int {
	w := Workers(workers)
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TaskPanic is the value Run re-panics with when a task function panics:
// the original panic value plus the index of the panicking task. The
// lowest-index panic wins regardless of the worker count or scheduling, so
// a crash reproduces identically under -parallel 1 and -parallel N.
type TaskPanic struct {
	Task  int
	Value any
	// Stack is the panicking goroutine's stack captured at recover time —
	// the pool re-panics from its own frame after the batch drains, so
	// without this the original crash site would be lost. Diagnostic only
	// (addresses and goroutine IDs vary run to run); crash bundles file it
	// with the other nondeterministic artifacts.
	Stack []byte
}

// Error makes a TaskPanic readable when it escapes to a crash report or is
// recovered into an error path.
func (p TaskPanic) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", p.Task, p.Value)
}

// Unwrap exposes a task panic whose value already was an error.
func (p TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Run executes tasks 0..n-1 across at most Bound(workers, n) goroutines.
// Each worker constructs its private resource once via newWorker (a forked
// tester insertion, a scratch buffer, …) and then pulls task indices from a
// shared counter. Task functions must write their outputs into slots
// addressed by the task index and must not touch another worker's resource.
//
// Every task runs even when some fail; afterwards the lowest-index task
// error (or, before that, the lowest-worker construction error) is
// returned, so the reported error does not depend on scheduling. With one
// worker the tasks run inline on the calling goroutine in index order.
//
// A panicking task does not tear down the pool mid-flight (which would
// kill the process from a worker goroutine and leave sibling workers
// racing): the panic is caught, the remaining tasks still run, and Run
// re-panics with a TaskPanic carrying the lowest panicking task index and
// its original panic value.
//
// Run is the one-shot compatibility form of the persistent Fleet: it
// executes the batch on a transient fleet sized Bound(workers, n) that is
// closed when the batch drains. Phase engines that fan out repeatedly
// should hold a Fleet and use Stream/RunOn/ForEachOn so worker resources
// survive between batches.
func Run[W any](n, workers int, newWorker func(w int) (W, error), task func(wk W, i int) error) error {
	if n <= 0 {
		return nil
	}
	f := NewFleet(Bound(workers, n))
	defer f.Close()
	return Stream(f, n, newWorker, task, nil)
}

// ForEach runs fn(i) for every i in [0, n) on the bounded pool, for tasks
// that need no worker-owned resource. The same determinism contract as Run
// applies.
func ForEach(n, workers int, fn func(i int) error) error {
	return Run(n, workers, func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return fn(i) })
}
