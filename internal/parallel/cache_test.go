package parallel

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/proptest"
)

func TestMemoCacheStripeCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128},
	} {
		if got := NewMemoCacheStripes(tc.in).Stripes(); got != tc.want {
			t.Errorf("NewMemoCacheStripes(%d).Stripes() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if s := NewMemoCache().Stripes(); s < 1 || s&(s-1) != 0 {
		t.Errorf("default stripe count %d not a positive power of two", s)
	}
}

func TestMemoCacheRange(t *testing.T) {
	c := NewMemoCacheStripes(8)
	want := map[uint64]float64{}
	for i := uint64(0); i < 100; i++ {
		k := i * 0x9e3779b97f4a7c15
		c.Put(k, float64(i))
		want[k] = float64(i)
	}
	got := map[uint64]float64{}
	c.Range(func(k uint64, v float64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range entry %#x = %v, want %v", k, got[k], v)
		}
	}
	// Early termination.
	n := 0
	c.Range(func(uint64, float64) bool { n++; return false })
	if n != 1 {
		t.Errorf("Range after false visited %d entries, want 1", n)
	}
}

// cacheOp is one scripted cache operation for the invariance property.
type cacheOp struct {
	kind  int // 0 = Put, 1 = Get, 2 = SetLimit
	key   uint64
	value float64
	limit int
}

// applyOps runs the script serially and returns the cache.
func applyOps(c *MemoCache, ops []cacheOp) {
	for _, op := range ops {
		switch op.kind {
		case 0:
			c.Put(op.key, op.value)
		case 1:
			c.Get(op.key)
		case 2:
			c.SetLimit(op.limit)
		}
	}
}

// The shard-count invariance property: any serial sequence of Put/Get/
// SetLimit operations leaves 1-stripe and N-stripe caches with identical
// hits, misses, dropped counts, lengths and retained entry sets. This is
// the contract that makes sharding a pure performance change.
func TestMemoCacheShardCountInvariance(t *testing.T) {
	proptest.Check(t, 60, func(pt *proptest.T) {
		nOps := pt.IntRange(1, 120)
		// A small key universe forces overwrites, hits and capacity
		// rejections to actually occur.
		keys := make([]uint64, pt.IntRange(1, 24))
		for i := range keys {
			keys[i] = pt.Uint64()
		}
		ops := make([]cacheOp, nOps)
		for i := range ops {
			switch pt.Intn(10) {
			case 0:
				ops[i] = cacheOp{kind: 2, limit: pt.IntRange(0, 12)}
			case 1, 2, 3:
				ops[i] = cacheOp{kind: 1, key: proptest.Pick(pt, keys)}
			default:
				ops[i] = cacheOp{kind: 0, key: proptest.Pick(pt, keys), value: pt.Float01()}
			}
		}
		pt.Logf("%d ops over %d keys", nOps, len(keys))

		for _, stripes := range []int{2, 8, 64} {
			one := NewMemoCacheStripes(1)
			many := NewMemoCacheStripes(stripes)
			applyOps(one, ops)
			applyOps(many, ops)
			if one.Hits() != many.Hits() || one.Misses() != many.Misses() {
				pt.Fatalf("stripes=%d: hits/misses %d/%d, want %d/%d",
					stripes, many.Hits(), many.Misses(), one.Hits(), one.Misses())
			}
			if one.Dropped() != many.Dropped() {
				pt.Fatalf("stripes=%d: dropped %d, want %d", stripes, many.Dropped(), one.Dropped())
			}
			if one.Len() != many.Len() {
				pt.Fatalf("stripes=%d: len %d, want %d", stripes, many.Len(), one.Len())
			}
			retained := map[uint64]float64{}
			one.Range(func(k uint64, v float64) bool { retained[k] = v; return true })
			many.Range(func(k uint64, v float64) bool {
				if want, ok := retained[k]; !ok || want != v {
					pt.Errorf("stripes=%d: entry %#x = %v, 1-stripe has %v (present %v)",
						stripes, k, v, want, ok)
				}
				return true
			})
		}
	})
}

// Concurrent hammering across stripes must never overshoot the capacity and
// must keep counter identities (every Put is retained or dropped).
func TestMemoCacheShardedConcurrentLimit(t *testing.T) {
	c := NewMemoCacheStripes(16)
	const limit = 64
	c.SetLimit(limit)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := uint64(g*perG + i)
				c.Put(k, float64(i))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > limit {
		t.Errorf("len %d exceeds limit %d", c.Len(), limit)
	}
	if got := c.Len() + int(c.Dropped()); got != goroutines*perG {
		t.Errorf("retained+dropped = %d, want %d", got, goroutines*perG)
	}
	if got := c.Hits() + c.Misses(); got != goroutines*perG {
		t.Errorf("hits+misses = %d, want %d", got, goroutines*perG)
	}
}

func BenchmarkMemoCacheContention(b *testing.B) {
	for _, stripes := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("stripes-%d", stripes), func(b *testing.B) {
			c := NewMemoCacheStripes(stripes)
			for i := uint64(0); i < 4096; i++ {
				c.Put(i*0x9e3779b97f4a7c15, float64(i))
			}
			b.RunParallel(func(pb *testing.PB) {
				var i uint64
				for pb.Next() {
					i++
					c.Get((i % 8192) * 0x9e3779b97f4a7c15)
					if i&15 == 0 {
						c.Put(i*0x6c62272e07bb0142, float64(i))
					}
				}
			})
		})
	}
}
