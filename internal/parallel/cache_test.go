package parallel

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/proptest"
)

func TestMemoCacheStripeCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128},
	} {
		if got := NewMemoCacheStripes(tc.in).Stripes(); got != tc.want {
			t.Errorf("NewMemoCacheStripes(%d).Stripes() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if s := NewMemoCache().Stripes(); s < 1 || s&(s-1) != 0 {
		t.Errorf("default stripe count %d not a positive power of two", s)
	}
}

func TestMemoCacheRange(t *testing.T) {
	c := NewMemoCacheStripes(8)
	want := map[uint64]float64{}
	for i := uint64(0); i < 100; i++ {
		k := i * 0x9e3779b97f4a7c15
		c.Put(k, float64(i))
		want[k] = float64(i)
	}
	got := map[uint64]float64{}
	c.Range(func(k uint64, v float64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range entry %#x = %v, want %v", k, got[k], v)
		}
	}
	// Early termination.
	n := 0
	c.Range(func(uint64, float64) bool { n++; return false })
	if n != 1 {
		t.Errorf("Range after false visited %d entries, want 1", n)
	}
}

// cacheOp is one scripted cache operation for the invariance property.
type cacheOp struct {
	kind  int // 0 = Put, 1 = Get, 2 = SetLimit
	key   uint64
	value float64
	limit int
}

// applyOps runs the script serially and returns the cache.
func applyOps(c *MemoCache, ops []cacheOp) {
	for _, op := range ops {
		switch op.kind {
		case 0:
			c.Put(op.key, op.value)
		case 1:
			c.Get(op.key)
		case 2:
			c.SetLimit(op.limit)
		}
	}
}

// The shard-count invariance property: any serial sequence of Put/Get/
// SetLimit operations leaves 1-stripe and N-stripe caches with identical
// hits, misses, dropped counts, lengths and retained entry sets. This is
// the contract that makes sharding a pure performance change.
func TestMemoCacheShardCountInvariance(t *testing.T) {
	proptest.Check(t, 60, func(pt *proptest.T) {
		nOps := pt.IntRange(1, 120)
		// A small key universe forces overwrites, hits and capacity
		// rejections to actually occur.
		keys := make([]uint64, pt.IntRange(1, 24))
		for i := range keys {
			keys[i] = pt.Uint64()
		}
		ops := make([]cacheOp, nOps)
		for i := range ops {
			switch pt.Intn(10) {
			case 0:
				ops[i] = cacheOp{kind: 2, limit: pt.IntRange(0, 12)}
			case 1, 2, 3:
				ops[i] = cacheOp{kind: 1, key: proptest.Pick(pt, keys)}
			default:
				ops[i] = cacheOp{kind: 0, key: proptest.Pick(pt, keys), value: pt.Float01()}
			}
		}
		pt.Logf("%d ops over %d keys", nOps, len(keys))

		for _, stripes := range []int{2, 8, 64} {
			one := NewMemoCacheStripes(1)
			many := NewMemoCacheStripes(stripes)
			applyOps(one, ops)
			applyOps(many, ops)
			if one.Hits() != many.Hits() || one.Misses() != many.Misses() {
				pt.Fatalf("stripes=%d: hits/misses %d/%d, want %d/%d",
					stripes, many.Hits(), many.Misses(), one.Hits(), one.Misses())
			}
			if one.Dropped() != many.Dropped() {
				pt.Fatalf("stripes=%d: dropped %d, want %d", stripes, many.Dropped(), one.Dropped())
			}
			if one.Len() != many.Len() {
				pt.Fatalf("stripes=%d: len %d, want %d", stripes, many.Len(), one.Len())
			}
			retained := map[uint64]float64{}
			one.Range(func(k uint64, v float64) bool { retained[k] = v; return true })
			many.Range(func(k uint64, v float64) bool {
				if want, ok := retained[k]; !ok || want != v {
					pt.Errorf("stripes=%d: entry %#x = %v, 1-stripe has %v (present %v)",
						stripes, k, v, want, ok)
				}
				return true
			})
		}
	})
}

// Concurrent hammering across stripes must never overshoot the capacity and
// must keep counter identities (every Put is retained or dropped).
func TestMemoCacheShardedConcurrentLimit(t *testing.T) {
	c := NewMemoCacheStripes(16)
	const limit = 64
	c.SetLimit(limit)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := uint64(g*perG + i)
				c.Put(k, float64(i))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > limit {
		t.Errorf("len %d exceeds limit %d", c.Len(), limit)
	}
	if got := c.Len() + int(c.Dropped()); got != goroutines*perG {
		t.Errorf("retained+dropped = %d, want %d", got, goroutines*perG)
	}
	if got := c.Hits() + c.Misses(); got != goroutines*perG {
		t.Errorf("hits+misses = %d, want %d", got, goroutines*perG)
	}
}

func BenchmarkMemoCacheContention(b *testing.B) {
	for _, stripes := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("stripes-%d", stripes), func(b *testing.B) {
			c := NewMemoCacheStripes(stripes)
			for i := uint64(0); i < 4096; i++ {
				c.Put(i*0x9e3779b97f4a7c15, float64(i))
			}
			b.RunParallel(func(pb *testing.PB) {
				var i uint64
				for pb.Next() {
					i++
					c.Get((i % 8192) * 0x9e3779b97f4a7c15)
					if i&15 == 0 {
						c.Put(i*0x6c62272e07bb0142, float64(i))
					}
				}
			})
		})
	}
}

// The batch-equivalence property: GetBatch and PutBatch are bit-compatible
// with the sequential Get/Put loops they replace — same values found, same
// hit/miss accounting, same retained set (including last-write-wins for
// duplicate keys within a batch and reject-at-capacity under SetLimit).
func TestMemoCacheBatchEquivalence(t *testing.T) {
	proptest.Check(t, 60, func(pt *proptest.T) {
		stripes := proptest.Pick(pt, []int{1, 4, 32})
		limit := 0
		if pt.Bool() {
			limit = pt.IntRange(1, 16)
		}
		// A small key universe forces in-batch duplicates and overwrites.
		keys := make([]uint64, pt.IntRange(1, 20))
		for i := range keys {
			keys[i] = pt.Uint64()
		}
		nRounds := pt.IntRange(1, 5)
		type round struct {
			putK []uint64
			putV []float64
			getK []uint64
		}
		rounds := make([]round, nRounds)
		for r := range rounds {
			np, ng := pt.IntRange(0, 30), pt.IntRange(0, 30)
			rounds[r].putK = make([]uint64, np)
			rounds[r].putV = make([]float64, np)
			for i := 0; i < np; i++ {
				rounds[r].putK[i] = proptest.Pick(pt, keys)
				rounds[r].putV[i] = pt.Float01()
			}
			rounds[r].getK = make([]uint64, ng)
			for i := 0; i < ng; i++ {
				rounds[r].getK[i] = proptest.Pick(pt, keys)
			}
		}
		pt.Logf("stripes=%d limit=%d rounds=%d keys=%d", stripes, limit, nRounds, len(keys))

		seq := NewMemoCacheStripes(stripes)
		bat := NewMemoCacheStripes(stripes)
		seq.SetLimit(limit)
		bat.SetLimit(limit)
		for r, rd := range rounds {
			for i, k := range rd.putK {
				seq.Put(k, rd.putV[i])
			}
			bat.PutBatch(rd.putK, rd.putV)
			wantV := make([]float64, len(rd.getK))
			wantOK := make([]bool, len(rd.getK))
			for i, k := range rd.getK {
				wantV[i], wantOK[i] = seq.Get(k)
			}
			gotV := make([]float64, len(rd.getK))
			gotOK := make([]bool, len(rd.getK))
			bat.GetBatch(rd.getK, gotV, gotOK)
			for i := range rd.getK {
				if gotV[i] != wantV[i] || gotOK[i] != wantOK[i] {
					pt.Fatalf("round %d get[%d] key %#x: batch %v/%v, sequential %v/%v",
						r, i, rd.getK[i], gotV[i], gotOK[i], wantV[i], wantOK[i])
				}
			}
		}
		if seq.Hits() != bat.Hits() || seq.Misses() != bat.Misses() {
			pt.Fatalf("hits/misses batch %d/%d, sequential %d/%d",
				bat.Hits(), bat.Misses(), seq.Hits(), seq.Misses())
		}
		if seq.Len() != bat.Len() || seq.Dropped() != bat.Dropped() {
			pt.Fatalf("len/dropped batch %d/%d, sequential %d/%d",
				bat.Len(), bat.Dropped(), seq.Len(), seq.Dropped())
		}
		retained := map[uint64]float64{}
		seq.Range(func(k uint64, v float64) bool { retained[k] = v; return true })
		bat.Range(func(k uint64, v float64) bool {
			if want, ok := retained[k]; !ok || want != v {
				pt.Errorf("entry %#x = %v, sequential has %v (present %v)", k, v, want, ok)
			}
			return true
		})
	})
}

func TestMemoCacheBatchDuplicateKeysLastWriteWins(t *testing.T) {
	for _, stripes := range []int{1, 8} {
		c := NewMemoCacheStripes(stripes)
		c.PutBatch(
			[]uint64{7, 7, 7, 13, 7},
			[]float64{1, 2, 3, 9, 4},
		)
		if c.Len() != 2 {
			t.Errorf("stripes=%d: len = %d, want 2", stripes, c.Len())
		}
		if v, ok := c.Get(7); !ok || v != 4 {
			t.Errorf("stripes=%d: key 7 = %v/%v, want 4/true (last write wins)", stripes, v, ok)
		}
		if v, ok := c.Get(13); !ok || v != 9 {
			t.Errorf("stripes=%d: key 13 = %v/%v, want 9/true", stripes, v, ok)
		}
	}
}

func TestMemoCacheBatchEmpty(t *testing.T) {
	c := NewMemoCacheStripes(4)
	c.GetBatch(nil, nil, nil)
	c.PutBatch(nil, nil)
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Errorf("empty batches mutated the cache: len=%d hits=%d misses=%d",
			c.Len(), c.Hits(), c.Misses())
	}
}

// BenchmarkMemoCacheBatch is the satellite microbenchmark: stripe-grouped
// batch resolve versus the per-key Get/Put loop it replaces, at the
// generation-sized batches the fitness engine uses.
func BenchmarkMemoCacheBatch(b *testing.B) {
	const batch = 256
	keys := make([]uint64, batch)
	vals := make([]float64, batch)
	found := make([]bool, batch)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
		vals[i] = float64(i)
	}
	for _, stripes := range []int{1, 64} {
		b.Run(fmt.Sprintf("get-loop/stripes-%d", stripes), func(b *testing.B) {
			c := NewMemoCacheStripes(stripes)
			c.PutBatch(keys, vals)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, k := range keys {
					vals[j], found[j] = c.Get(k)
				}
			}
		})
		b.Run(fmt.Sprintf("get-batch/stripes-%d", stripes), func(b *testing.B) {
			c := NewMemoCacheStripes(stripes)
			c.PutBatch(keys, vals)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.GetBatch(keys, vals, found)
			}
		})
		b.Run(fmt.Sprintf("put-loop/stripes-%d", stripes), func(b *testing.B) {
			c := NewMemoCacheStripes(stripes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, k := range keys {
					c.Put(k, vals[j])
				}
			}
		})
		b.Run(fmt.Sprintf("put-batch/stripes-%d", stripes), func(b *testing.B) {
			c := NewMemoCacheStripes(stripes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.PutBatch(keys, vals)
			}
		})
	}
}
