package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunFewerTasksThanWorkers(t *testing.T) {
	// Bound must clamp the pool to the task count: 3 tasks never start more
	// than 3 workers, and every task still runs exactly once.
	var built atomic.Int32
	var ran [3]atomic.Int32
	err := Run(3, 16,
		func(int) (int, error) { built.Add(1); return 0, nil },
		func(_ int, i int) error { ran[i].Add(1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if built.Load() > 3 {
		t.Errorf("%d workers built for 3 tasks", built.Load())
	}
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Errorf("task %d ran %d times", i, ran[i].Load())
		}
	}
	if got := Bound(16, 3); got != 3 {
		t.Errorf("Bound(16, 3) = %d", got)
	}
}

func TestRunNegativeTaskCount(t *testing.T) {
	called := false
	err := Run(-4, 2,
		func(int) (int, error) { called = true; return 0, nil },
		func(int, int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("negative task count: err=%v called=%v", err, called)
	}
}

// runCatching recovers Run's re-panic and returns it.
func runCatching(t *testing.T, n, workers int, task func(i int) error) (rec any) {
	t.Helper()
	defer func() { rec = recover() }()
	err := Run(n, workers,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return task(i) })
	if err != nil {
		t.Fatalf("unexpected error instead of panic: %v", err)
	}
	return nil
}

func TestRunPanicPropagatesLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		rec := runCatching(t, 8, workers, func(i int) error {
			ran.Add(1)
			if i == 2 || i == 6 {
				panic(fmt.Sprintf("boom %d", i))
			}
			return nil
		})
		tp, ok := rec.(TaskPanic)
		if !ok {
			t.Fatalf("workers=%d: recovered %T (%v), want TaskPanic", workers, rec, rec)
		}
		if tp.Task != 2 || tp.Value != "boom 2" {
			t.Errorf("workers=%d: got TaskPanic{%d, %v}, want task 2", workers, tp.Task, tp.Value)
		}
		if !strings.Contains(tp.Error(), "task 2 panicked: boom 2") {
			t.Errorf("workers=%d: unhelpful message %q", workers, tp.Error())
		}
		// The winning panic carries the stack captured at recover time, so a
		// crash report can show the original frame, not the pool's re-panic.
		if !strings.Contains(string(tp.Stack), "panic") {
			t.Errorf("workers=%d: TaskPanic.Stack missing the panic frame:\n%s", workers, tp.Stack)
		}
		// The pooled path runs every task despite the panics; the inline
		// path stops at the first one (index order, so equally deterministic).
		if workers == 1 && ran.Load() != 3 {
			t.Errorf("inline run executed %d tasks before the panic, want 3", ran.Load())
		}
		if workers > 1 && ran.Load() != 8 {
			t.Errorf("pooled run executed %d of 8 tasks", ran.Load())
		}
	}
}

func TestRunPanicUnwrapsErrorValue(t *testing.T) {
	sentinel := errors.New("wrapped cause")
	rec := runCatching(t, 2, 2, func(i int) error {
		if i == 1 {
			panic(sentinel)
		}
		return nil
	})
	tp, ok := rec.(TaskPanic)
	if !ok {
		t.Fatalf("recovered %T, want TaskPanic", rec)
	}
	if !errors.Is(tp, sentinel) {
		t.Errorf("TaskPanic does not unwrap to the panicked error")
	}
}

func TestRunPanicBeatsError(t *testing.T) {
	// A panic anywhere outranks task errors: the caller must not mistake a
	// crashed batch for a cleanly failed one.
	rec := runCatching(t, 4, 2, func(i int) error {
		if i == 0 {
			return errors.New("ordinary failure")
		}
		if i == 3 {
			panic("late crash")
		}
		return nil
	})
	tp, ok := rec.(TaskPanic)
	if !ok || tp.Task != 3 {
		t.Fatalf("recovered %v, want TaskPanic for task 3", rec)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if tp, ok := recover().(TaskPanic); !ok || tp.Task != 1 {
			t.Errorf("ForEach panic not propagated as TaskPanic: %v", tp)
		}
	}()
	_ = ForEach(3, 3, func(i int) error {
		if i == 1 {
			panic("fe")
		}
		return nil
	})
	t.Error("ForEach returned instead of panicking")
}

func TestMemoCacheLimitRejectsNewAtCapacity(t *testing.T) {
	c := NewMemoCache()
	c.SetLimit(2)
	if c.Limit() != 2 {
		t.Fatalf("Limit() = %d", c.Limit())
	}
	c.Put(1, 1.0)
	c.Put(2, 2.0)
	c.Put(3, 3.0) // at capacity: new key rejected
	if c.Len() != 2 {
		t.Errorf("Len() = %d after capped insert, want 2", c.Len())
	}
	if _, ok := c.Get(3); ok {
		t.Error("rejected key 3 is resident")
	}
	if c.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", c.Dropped())
	}
	// Overwrites of resident keys still land at capacity.
	c.Put(2, 22.0)
	if v, ok := c.Get(2); !ok || v != 22.0 {
		t.Errorf("overwrite at capacity lost: %v %v", v, ok)
	}
	if c.Dropped() != 1 {
		t.Errorf("overwrite counted as drop: Dropped() = %d", c.Dropped())
	}
	// Raising the cap admits new keys again.
	c.SetLimit(3)
	c.Put(3, 3.0)
	if v, ok := c.Get(3); !ok || v != 3.0 {
		t.Error("key rejected below capacity")
	}
}

func TestMemoCacheSetLimitBelowCurrentSize(t *testing.T) {
	c := NewMemoCache()
	for k := uint64(0); k < 5; k++ {
		c.Put(k, float64(k))
	}
	c.SetLimit(2)
	if c.Len() != 5 {
		t.Errorf("shrinking the cap evicted entries: Len() = %d", c.Len())
	}
	c.Put(9, 9.0)
	if _, ok := c.Get(9); ok {
		t.Error("new key admitted above the cap")
	}
	for k := uint64(0); k < 5; k++ {
		if v, ok := c.Get(k); !ok || v != float64(k) {
			t.Errorf("resident key %d lost after cap shrink", k)
		}
	}
}

func TestMemoCacheReset(t *testing.T) {
	c := NewMemoCache()
	c.SetLimit(1)
	c.Put(1, 1.0)
	c.Put(2, 2.0) // dropped
	c.Get(1)      // hit
	c.Get(7)      // miss
	c.Reset()
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 || c.Dropped() != 0 {
		t.Errorf("Reset left state: len=%d hits=%d misses=%d dropped=%d",
			c.Len(), c.Hits(), c.Misses(), c.Dropped())
	}
	if c.Limit() != 1 {
		t.Errorf("Reset cleared the limit: %d", c.Limit())
	}
	c.Put(3, 3.0)
	if v, ok := c.Get(3); !ok || v != 3.0 {
		t.Error("cache unusable after Reset")
	}
}

func TestMemoCacheUnlimitedByDefault(t *testing.T) {
	c := NewMemoCache()
	for k := uint64(0); k < 10_000; k++ {
		c.Put(k, float64(k))
	}
	if c.Len() != 10_000 || c.Dropped() != 0 {
		t.Errorf("unbounded cache dropped entries: len=%d dropped=%d", c.Len(), c.Dropped())
	}
	c.SetLimit(-5)
	c.Put(99_999, 1)
	if c.Limit() != 0 || c.Len() != 10_001 {
		t.Errorf("negative limit not treated as unbounded: limit=%d len=%d", c.Limit(), c.Len())
	}
}
