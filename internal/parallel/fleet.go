package parallel

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Fleet is a persistent deterministic worker pool: the goroutines are
// created once and survive across any number of execution stages, so
// worker-owned resources (forked tester insertions, scratch arenas) that a
// caller memoizes by worker index are constructed once per run instead of
// once per batch. Stages run through Stream/RunOn/ForEachOn with the same
// determinism contract as Run — index-addressed results, per-task seeds,
// bit-identical output at any worker count — plus strictly in-order result
// delivery while later tasks are still executing, which is what lets batch
// barriers (per GA generation, per shmoo test, per lot window) become a
// pipeline.
//
// Worker index w is always served by the same goroutine, so a resource a
// caller memoizes under index w is never touched by two goroutines, even
// across stages. A fleet runs one stage at a time (concurrent Stream calls
// serialize); a task must never start a stage on its own fleet — use a
// separate fleet for nested parallelism.
type Fleet struct {
	nw     int
	window int

	mu      sync.Mutex // guards start/close state
	chans   []chan *stage
	wg      sync.WaitGroup
	started bool
	closed  bool

	streamMu sync.Mutex // one stage in flight at a time
}

// NewFleet creates a fleet with Workers(workers) persistent workers. The
// worker goroutines spawn lazily on the first multi-worker stage; a fleet
// sized 1 never spawns any and executes every stage inline on the calling
// goroutine, exactly like Run with one worker. Close releases the
// goroutines when the run is over.
func NewFleet(workers int) *Fleet {
	return &Fleet{nw: Workers(workers)}
}

// Size returns the worker count.
func (f *Fleet) Size() int { return f.nw }

// SetWindow bounds how far task execution may run ahead of in-order
// delivery: with window w, task floor+w is not claimed until task floor has
// been delivered. Values below 1 remove the bound (the default). The window
// never changes results — only peak buffered work — and exists for
// memory-bounded pipelines and the invariance tests. Not safe to call
// concurrently with a running stage.
func (f *Fleet) SetWindow(n int) {
	if n < 1 {
		n = 0
	}
	f.window = n
}

// Window returns the configured run-ahead bound (0 = unbounded).
func (f *Fleet) Window() int { return f.window }

// Close shuts the worker goroutines down and waits for them to exit.
// Idempotent. A closed fleet must not be streamed on again.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	if f.started {
		for _, ch := range f.chans {
			close(ch)
		}
	}
	f.wg.Wait()
}

// start spawns the persistent workers (called with f.mu held).
func (f *Fleet) start() {
	f.chans = make([]chan *stage, f.nw)
	for w := 0; w < f.nw; w++ {
		// Buffer 1: a stage is fully drained before Stream returns, so the
		// next stage's broadcast never blocks on a busy worker.
		ch := make(chan *stage, 1)
		f.chans[w] = ch
		f.wg.Add(1)
		go func(w int, ch chan *stage) {
			defer f.wg.Done()
			for st := range ch {
				st.work(w)
			}
		}(w, ch)
	}
	f.started = true
}

// StreamStats is the scheduling summary of one fleet stage, reported to the
// fleet observer. Everything here depends on goroutine scheduling and
// wall-clock time, so consumers must quarantine it with the other
// non-deterministic diagnostics (nd_ metrics); task results are
// bit-identical regardless.
type StreamStats struct {
	Workers int // workers that participated in the stage
	Tasks   int
	// MaxRunAhead is the high-water mark of claimed-but-undelivered tasks —
	// the observed pipeline queue depth.
	MaxRunAhead int
	// BusyNanos is the summed task execution time across workers; WallNanos
	// is the stage's wall time. BusyNanos/(Workers*WallNanos) is the worker
	// utilization.
	BusyNanos int64
	WallNanos int64
	// DeliverNanos is the time spent inside the in-order deliver callback;
	// OverlapNanos is the portion of it during which at least one task was
	// still executing — the pipeline overlap a batch barrier would have
	// serialized.
	DeliverNanos int64
	OverlapNanos int64
}

// Utilization returns the mean busy fraction of the stage's workers.
func (s StreamStats) Utilization() float64 {
	if s.Workers <= 0 || s.WallNanos <= 0 {
		return 0
	}
	return float64(s.BusyNanos) / (float64(s.Workers) * float64(s.WallNanos))
}

// OverlapRatio returns the fraction of delivery time that overlapped task
// execution (0 when nothing was delivered).
func (s StreamStats) OverlapRatio() float64 {
	if s.DeliverNanos <= 0 {
		return 0
	}
	return float64(s.OverlapNanos) / float64(s.DeliverNanos)
}

// FleetObserver receives the scheduling summary of every completed fleet
// stage.
type FleetObserver func(StreamStats)

var fleetObserver atomic.Pointer[FleetObserver]

// SetFleetObserver installs the process-wide fleet observer (nil
// uninstalls). Like SetObserver, it is meant for top-level run
// instrumentation; there is one slot.
func SetFleetObserver(fn FleetObserver) {
	if fn == nil {
		fleetObserver.Store(nil)
		return
	}
	fleetObserver.Store(&fn)
}

// stage is one Stream execution: tasks 0..n-1 claimed in index order by the
// participating workers, completion flags signalled to the delivering
// caller, and a run-ahead gate that keeps claims within window of the
// delivery floor.
type stage struct {
	n       int
	window  int
	workers int // participants: min(fleet size, n)

	init func(w int) error // constructs/fetches worker w's resource
	run  func(w, i int)    // executes task i on worker w's resource

	mu       sync.Mutex
	cond     sync.Cond
	next     int  // next unclaimed task index
	floor    int  // tasks delivered so far; gates claims when window > 0
	open     bool // lifted gate: drain without waiting on delivery
	failures int  // workers whose init failed
	maxAhead int  // high-water of next-floor (queue depth)
	done     []uint8

	timed    bool // collect wall-clock stats for the fleet observer
	inFlight atomic.Int32
	busy     atomic.Int64

	wg sync.WaitGroup
}

// work is one worker's participation in a stage.
func (st *stage) work(w int) {
	defer st.wg.Done()
	if w >= st.workers {
		return
	}
	if err := st.init(w); err != nil {
		st.mu.Lock()
		st.failures++
		st.cond.Broadcast()
		st.mu.Unlock()
		return
	}
	for {
		st.mu.Lock()
		for !st.open && st.window > 0 && st.next >= st.floor+st.window && st.next < st.n {
			st.cond.Wait()
		}
		i := st.next
		if i >= st.n {
			st.mu.Unlock()
			return
		}
		st.next++
		if ahead := st.next - st.floor; ahead > st.maxAhead {
			st.maxAhead = ahead
		}
		st.mu.Unlock()
		if st.timed {
			st.inFlight.Add(1)
			t0 := time.Now()
			st.run(w, i)
			st.busy.Add(int64(time.Since(t0)))
			st.inFlight.Add(-1)
		} else {
			st.run(w, i)
		}
		st.mu.Lock()
		st.done[i] = 1
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// Stream executes tasks 0..n-1 on the fleet and delivers their results
// strictly in index order while later tasks are still executing. Each
// participating worker obtains its resource via newWorker (memoize by
// worker index for resources that should persist across stages); task runs
// out of order into index-addressed slots; deliver (nil to skip) is invoked
// on the calling goroutine for i = 0, 1, 2, … as soon as task i and every
// task before it have finished, so serial merge work (stats accumulation,
// memo-cache inserts, telemetry emission) overlaps the remaining execution
// instead of waiting behind a batch barrier. Deliveries — and therefore
// every side effect of the merge — happen in the same order at any worker
// count.
//
// Error semantics mirror Run: every task still runs when some fail
// (delivery stops at the first failed index, and with one worker the tasks
// after an error are skipped, exactly like Run's inline path); the
// lowest-index task panic is re-panicked as a TaskPanic after the stage
// drains; otherwise the lowest-worker construction error, then the
// lowest-index task error, then the first deliver error is returned.
func Stream[W any](f *Fleet, n int, newWorker func(w int) (W, error), task func(wk W, i int) error, deliver func(i int) error) error {
	if n <= 0 {
		return nil
	}
	f.streamMu.Lock()
	defer f.streamMu.Unlock()

	obs := observer.Load()
	fobs := fleetObserver.Load()
	var wallStart time.Time
	if fobs != nil {
		wallStart = time.Now()
	}

	panics := make([]any, n)
	stacks := make([][]byte, n)
	taskErrs := make([]error, n)

	if f.nw == 1 {
		// Inline path: no goroutines, tasks and deliveries interleave in
		// index order on the calling goroutine (Run's single-worker
		// semantics: stop at the first panic or error).
		wk, err := newWorker(0)
		if err != nil {
			return err
		}
		var deliverErr error
		for i := 0; i < n; i++ {
			err := runStreamTask(wk, i, task, panics, stacks)
			if panics[i] != nil {
				panic(TaskPanic{Task: i, Value: panics[i], Stack: stacks[i]})
			}
			if err != nil {
				return err
			}
			if deliver != nil {
				if deliverErr = deliver(i); deliverErr != nil {
					return deliverErr
				}
			}
		}
		if obs != nil {
			(*obs)(1, []int{n})
		}
		if fobs != nil {
			wall := int64(time.Since(wallStart))
			(*fobs)(StreamStats{Workers: 1, Tasks: n, MaxRunAhead: 1,
				BusyNanos: wall, WallNanos: wall})
		}
		return nil
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		panic("parallel: Stream on a closed Fleet")
	}
	if !f.started {
		f.start()
	}
	f.mu.Unlock()

	np := f.nw
	if np > n {
		np = n
	}
	res := make([]W, np)
	resInit := make([]bool, np)
	workerErrs := make([]error, np)
	taskCounts := make([]int, np)

	st := &stage{n: n, window: f.window, workers: np, timed: fobs != nil, done: make([]uint8, n)}
	st.cond.L = &st.mu
	st.init = func(w int) error {
		if !resInit[w] {
			wk, err := newWorker(w)
			if err != nil {
				workerErrs[w] = err
				return err
			}
			res[w] = wk
			resInit[w] = true
		}
		return nil
	}
	st.run = func(w, i int) {
		taskCounts[w]++
		taskErrs[i] = runStreamTask(res[w], i, task, panics, stacks)
	}

	st.wg.Add(f.nw)
	for _, ch := range f.chans {
		ch <- st
	}

	// In-order delivery while the workers keep executing. Stops at the
	// first failed index (or deliver error); the gate is then opened so the
	// drain never stalls on the frozen floor.
	var deliverErr error
	var deliverNanos, overlapNanos int64
	st.mu.Lock()
	for i := 0; i < n; i++ {
		for st.done[i] == 0 && st.failures < st.workers {
			st.cond.Wait()
		}
		if st.done[i] == 0 { // every worker failed construction; nothing ran
			break
		}
		if panics[i] != nil || taskErrs[i] != nil {
			break
		}
		if deliver != nil {
			st.mu.Unlock()
			if st.timed {
				executing := st.inFlight.Load() > 0
				t0 := time.Now()
				deliverErr = deliver(i)
				d := int64(time.Since(t0))
				deliverNanos += d
				if executing {
					overlapNanos += d
				}
			} else {
				deliverErr = deliver(i)
			}
			st.mu.Lock()
			if deliverErr != nil {
				break
			}
		}
		st.floor = i + 1
		st.cond.Broadcast()
	}
	st.open = true
	st.cond.Broadcast()
	st.mu.Unlock()
	st.wg.Wait()

	for i, r := range panics {
		if r != nil {
			panic(TaskPanic{Task: i, Value: r, Stack: stacks[i]})
		}
	}
	if obs != nil {
		(*obs)(np, taskCounts)
	}
	if fobs != nil {
		(*fobs)(StreamStats{
			Workers:      np,
			Tasks:        n,
			MaxRunAhead:  st.maxAhead,
			BusyNanos:    st.busy.Load(),
			WallNanos:    int64(time.Since(wallStart)),
			DeliverNanos: deliverNanos,
			OverlapNanos: overlapNanos,
		})
	}
	for _, err := range workerErrs {
		if err != nil {
			return err
		}
	}
	for _, err := range taskErrs {
		if err != nil {
			return err
		}
	}
	return deliverErr
}

// runStreamTask executes one task with panic capture (shared by the inline
// and fleet paths).
func runStreamTask[W any](wk W, i int, task func(wk W, i int) error, panics []any, stacks [][]byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
			stacks[i] = debug.Stack()
		}
	}()
	return task(wk, i)
}

// RunOn executes tasks 0..n-1 on the fleet with no delivery callback — the
// persistent-pool form of Run.
func RunOn[W any](f *Fleet, n int, newWorker func(w int) (W, error), task func(wk W, i int) error) error {
	return Stream(f, n, newWorker, task, nil)
}

// ForEachOn runs fn(i) for every i in [0, n) on the fleet, for tasks that
// need no worker-owned resource.
func ForEachOn(f *Fleet, n int, fn func(i int) error) error {
	return Stream(f, n, func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return fn(i) }, nil)
}
