package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/proptest"
)

func TestStreamDeliversInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		f := NewFleet(workers)
		results := make([]int, 20)
		var delivered []int
		err := Stream(f, 20,
			func(w int) (int, error) { return w, nil },
			func(_ int, i int) error { results[i] = i * i; return nil },
			func(i int) error {
				if results[i] != i*i {
					t.Errorf("workers=%d: delivered %d before its task finished", workers, i)
				}
				delivered = append(delivered, i)
				return nil
			})
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(delivered) != 20 {
			t.Fatalf("workers=%d: delivered %d of 20", workers, len(delivered))
		}
		for i, d := range delivered {
			if d != i {
				t.Fatalf("workers=%d: delivery order %v", workers, delivered)
			}
		}
	}
}

func TestStreamSurvivesAcrossStages(t *testing.T) {
	// The tentpole property: worker-memoized resources persist across
	// stages. Each worker's resource is constructed exactly once even
	// though the fleet runs several stages.
	f := NewFleet(4)
	defer f.Close()
	var built atomic.Int32
	resources := make([]*int, f.Size())
	newWorker := func(w int) (*int, error) {
		if resources[w] == nil {
			built.Add(1)
			v := new(int)
			resources[w] = v
		}
		return resources[w], nil
	}
	for stage := 0; stage < 5; stage++ {
		err := RunOn(f, 32, newWorker, func(wk *int, i int) error {
			*wk++ // worker-owned: no two goroutines share a resource
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if built.Load() > 4 {
		t.Errorf("%d resources built for a 4-worker fleet over 5 stages", built.Load())
	}
	total := 0
	for _, r := range resources {
		if r != nil {
			total += *r
		}
	}
	if total != 5*32 {
		t.Errorf("tasks executed %d times, want %d", total, 5*32)
	}
}

func TestStreamWindowBoundsRunAhead(t *testing.T) {
	defer SetFleetObserver(nil)
	for _, window := range []int{1, 2, 5} {
		var stats StreamStats
		SetFleetObserver(func(s StreamStats) { stats = s })
		f := NewFleet(4)
		f.SetWindow(window)
		if f.Window() != window {
			t.Fatalf("Window() = %d, want %d", f.Window(), window)
		}
		sum := 0
		err := Stream(f, 40,
			func(w int) (struct{}, error) { return struct{}{}, nil },
			func(_ struct{}, i int) error { return nil },
			func(i int) error { sum += i; return nil })
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sum != 40*39/2 {
			t.Errorf("window=%d: merged sum %d", window, sum)
		}
		if stats.MaxRunAhead > window {
			t.Errorf("window=%d: run-ahead high-water %d exceeds the bound", window, stats.MaxRunAhead)
		}
		if stats.Tasks != 40 || stats.Workers != 4 {
			t.Errorf("window=%d: observer saw %d tasks on %d workers", window, stats.Tasks, stats.Workers)
		}
	}
}

func TestStreamTaskErrorLowestIndexWins(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()
	var ran atomic.Int32
	var delivered atomic.Int32
	err := Stream(f, 10,
		func(w int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error {
			ran.Add(1)
			if i == 3 || i == 7 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		},
		func(i int) error { delivered.Add(1); return nil })
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("got %v, want the lowest-index task error", err)
	}
	if ran.Load() != 10 {
		t.Errorf("only %d of 10 tasks ran despite failures", ran.Load())
	}
	if delivered.Load() != 3 {
		t.Errorf("%d deliveries, want 3 (stop at the first failed index)", delivered.Load())
	}
}

func TestStreamDeliverErrorStopsDelivery(t *testing.T) {
	f := NewFleet(3)
	defer f.Close()
	sentinel := errors.New("merge failed")
	var delivered atomic.Int32
	err := Stream(f, 9,
		func(w int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return nil },
		func(i int) error {
			if i == 4 {
				return sentinel
			}
			delivered.Add(1)
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the deliver error", err)
	}
	if delivered.Load() != 4 {
		t.Errorf("%d deliveries before the failing one, want 4", delivered.Load())
	}
}

func TestStreamConstructionErrorLowestWorkerWins(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()
	err := RunOn(f, 16,
		func(w int) (struct{}, error) {
			if w == 1 || w == 3 {
				return struct{}{}, fmt.Errorf("worker %d broken", w)
			}
			return struct{}{}, nil
		},
		func(_ struct{}, i int) error { return nil })
	if err == nil || err.Error() != "worker 1 broken" {
		t.Fatalf("got %v, want the lowest-worker construction error", err)
	}
}

func TestStreamAllWorkersFailConstruction(t *testing.T) {
	f := NewFleet(3)
	defer f.Close()
	var ran atomic.Int32
	err := RunOn(f, 8,
		func(w int) (struct{}, error) { return struct{}{}, fmt.Errorf("worker %d broken", w) },
		func(_ struct{}, i int) error { ran.Add(1); return nil })
	if err == nil || err.Error() != "worker 0 broken" {
		t.Fatalf("got %v, want worker 0's error", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran with no constructible worker", ran.Load())
	}
	// The fleet survives a failed stage: a later stage still works.
	if err := ForEachOn(f, 4, func(i int) error { return nil }); err != nil {
		t.Fatalf("fleet unusable after failed construction: %v", err)
	}
}

// TestStreamPanicDeterministicLowestIndex pins the TaskPanic-through-Fleet
// contract: like Run, the lowest-index panic wins at any worker count, it
// outranks task errors, and the stage drains before re-panicking.
func TestStreamPanicDeterministicLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		f := NewFleet(workers)
		var ran atomic.Int32
		var streamErr error
		rec := func() (rec any) {
			defer func() { rec = recover() }()
			streamErr = Stream(f, 12,
				func(w int) (struct{}, error) { return struct{}{}, nil },
				func(_ struct{}, i int) error {
					ran.Add(1)
					if i == 5 || i == 9 {
						panic(fmt.Sprintf("boom %d", i))
					}
					if i == 1 {
						return errors.New("ordinary failure")
					}
					return nil
				}, nil)
			return nil
		}()
		f.Close()
		if workers == 1 {
			// Inline semantics (same as Run's): index order stops at the
			// first failure, so the task-1 error precedes any panic.
			if rec != nil {
				t.Fatalf("inline fleet panicked (%v) instead of returning the first error", rec)
			}
			if streamErr == nil || streamErr.Error() != "ordinary failure" {
				t.Errorf("inline fleet returned %v, want the task-1 error", streamErr)
			}
			if ran.Load() != 2 {
				t.Errorf("inline fleet ran %d tasks before the error, want 2", ran.Load())
			}
			continue
		}
		tp, ok := rec.(TaskPanic)
		if !ok {
			t.Fatalf("workers=%d: recovered %T (%v), want TaskPanic", workers, rec, rec)
		}
		if tp.Task != 5 || tp.Value != "boom 5" {
			t.Errorf("workers=%d: TaskPanic{%d, %v}, want task 5 (panic beats the task-1 error)", workers, tp.Task, tp.Value)
		}
		if len(tp.Stack) == 0 {
			t.Errorf("workers=%d: TaskPanic without a captured stack", workers)
		}
		if ran.Load() != 12 {
			t.Errorf("workers=%d: %d of 12 tasks ran before the re-panic", workers, ran.Load())
		}
	}
}

func TestStreamOnClosedFleetPanics(t *testing.T) {
	f := NewFleet(2)
	// Force the goroutines up so Close exercises the full path.
	if err := ForEachOn(f, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Stream on a closed fleet did not panic")
		}
	}()
	_ = ForEachOn(f, 1, func(i int) error { return nil })
}

func TestStreamZeroTasks(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()
	called := false
	err := Stream(f, 0,
		func(w int) (struct{}, error) { called = true; return struct{}{}, nil },
		func(_ struct{}, i int) error { called = true; return nil },
		func(i int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("zero tasks: err=%v called=%v", err, called)
	}
}

func TestStreamObserverReportsParticipants(t *testing.T) {
	// Like Run, the pool observer sees min(size, n) workers and per-worker
	// task counts summing to n.
	defer SetObserver(nil)
	var gotWorkers int
	var gotTotal int
	SetObserver(func(workers int, tasksPerWorker []int) {
		gotWorkers = workers
		gotTotal = 0
		for _, c := range tasksPerWorker {
			gotTotal += c
		}
	})
	f := NewFleet(8)
	defer f.Close()
	if err := ForEachOn(f, 3, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if gotWorkers != 3 || gotTotal != 3 {
		t.Errorf("observer saw %d workers / %d tasks, want 3/3", gotWorkers, gotTotal)
	}
}

// taskValue is the deterministic per-task "measurement" the equivalence
// properties compare across schedulers: depends only on the task index and
// a seed, never on worker identity or execution order.
func taskValue(seed int64, i int) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x%1_000_003) / 1_000_003
}

// TestFleetMatchesRunProperty is the scheduler-equivalence invariant suite:
// for random task counts, worker counts, run-ahead windows and memo-cache
// configurations, Stream on a persistent fleet produces bit-identical
// results, identical in-order merge sequences and identical cache
// accounting to the legacy Run barrier followed by a serial merge loop.
func TestFleetMatchesRunProperty(t *testing.T) {
	proptest.Check(t, 40, func(pt *proptest.T) {
		n := pt.IntRange(0, 60)
		workers := proptest.Pick(pt, []int{1, 2, 8})
		window := proptest.Pick(pt, []int{0, 1, 3, 7})
		useCache := pt.Bool()
		seed := pt.Int64Range(1, 1<<40)
		stages := pt.IntRange(1, 3)
		pt.Logf("n=%d workers=%d window=%d cache=%v seed=%d stages=%d",
			n, workers, window, useCache, seed, stages)

		// Reference: legacy Run (batch barrier), then a serial merge loop.
		runMerged := make([][]float64, stages)
		var runCacheHits, runCacheMiss int64
		{
			var cache *MemoCache
			if useCache {
				cache = NewMemoCache()
			}
			for s := 0; s < stages; s++ {
				vals := make([]float64, n)
				resolved := make([]bool, n)
				if cache != nil {
					for i := 0; i < n; i++ {
						// Key collisions across stages are intentional: stage
						// s>0 re-resolves stage 0's keys as hits.
						if v, ok := cache.Get(uint64(i)); ok {
							vals[i], resolved[i] = v, true
						}
					}
				}
				err := Run(n, workers,
					func(w int) (struct{}, error) { return struct{}{}, nil },
					func(_ struct{}, i int) error {
						if !resolved[i] {
							vals[i] = taskValue(seed, i)
						}
						return nil
					})
				if err != nil {
					pt.Fatalf("Run: %v", err)
				}
				for i := 0; i < n; i++ {
					if cache != nil && !resolved[i] {
						cache.Put(uint64(i), vals[i])
					}
					runMerged[s] = append(runMerged[s], vals[i])
				}
			}
			if cache != nil {
				runCacheHits, runCacheMiss = cache.Hits(), cache.Misses()
			}
		}

		// Fleet: persistent workers across stages, pre-dispatch batch cache
		// resolve, streamed in-order merge.
		fleetMerged := make([][]float64, stages)
		var fleetCacheHits, fleetCacheMiss int64
		{
			var cache *MemoCache
			if useCache {
				cache = NewMemoCache()
			}
			f := NewFleet(workers)
			f.SetWindow(window)
			for s := 0; s < stages; s++ {
				vals := make([]float64, n)
				resolved := make([]bool, n)
				if cache != nil {
					keys := make([]uint64, n)
					for i := range keys {
						keys[i] = uint64(i)
					}
					cache.GetBatch(keys, vals, resolved)
				}
				err := Stream(f, n,
					func(w int) (struct{}, error) { return struct{}{}, nil },
					func(_ struct{}, i int) error {
						if !resolved[i] {
							vals[i] = taskValue(seed, i)
						}
						return nil
					},
					func(i int) error {
						if cache != nil && !resolved[i] {
							cache.Put(uint64(i), vals[i])
						}
						fleetMerged[s] = append(fleetMerged[s], vals[i])
						return nil
					})
				if err != nil {
					pt.Fatalf("Stream: %v", err)
				}
			}
			f.Close()
			if cache != nil {
				fleetCacheHits, fleetCacheMiss = cache.Hits(), cache.Misses()
			}
		}

		for s := 0; s < stages; s++ {
			if len(runMerged[s]) != len(fleetMerged[s]) {
				pt.Fatalf("stage %d: merge lengths %d vs %d", s, len(runMerged[s]), len(fleetMerged[s]))
			}
			for i := range runMerged[s] {
				if runMerged[s][i] != fleetMerged[s][i] {
					pt.Fatalf("stage %d merge[%d]: run %g, fleet %g", s, i, runMerged[s][i], fleetMerged[s][i])
				}
			}
		}
		if runCacheHits != fleetCacheHits || runCacheMiss != fleetCacheMiss {
			pt.Fatalf("cache accounting: run %d/%d, fleet %d/%d",
				runCacheHits, runCacheMiss, fleetCacheHits, fleetCacheMiss)
		}
	})
}
