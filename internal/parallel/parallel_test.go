package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Bound(8, 3); got != 3 {
		t.Errorf("Bound(8, 3) = %d, want 3", got)
	}
	if got := Bound(2, 100); got != 2 {
		t.Errorf("Bound(2, 100) = %d, want 2", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 200
		counts := make([]atomic.Int64, n)
		if err := ForEach(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	// One worker must execute tasks inline, in index order.
	var order []int
	if err := ForEach(10, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int64
	if err := ForEach(100, workers, func(int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		defer cur.Add(-1)
		runtime.Gosched()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, worker bound is %d", p, workers)
	}
}

func TestRunLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		wantErr := errors.New("task 3 failed")
		err := ForEach(50, workers, func(i int) error {
			switch i {
			case 3:
				return wantErr
			case 7, 20, 41:
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Errorf("workers=%d: got %v, want lowest-index error %v", workers, err, wantErr)
		}
	}
}

func TestRunWorkerConstructionError(t *testing.T) {
	boom := errors.New("no resources")
	err := Run(10, 4, func(w int) (int, error) {
		if w == 0 {
			return 0, boom
		}
		return w, nil
	}, func(int, int) error { return nil })
	if !errors.Is(err, boom) {
		t.Errorf("worker construction error lost: %v", err)
	}
}

func TestRunWorkerOwnedResources(t *testing.T) {
	// Every worker gets its own resource; a task only ever sees the
	// resource of the worker that runs it.
	const n, workers = 64, 4
	var made atomic.Int64
	type res struct{ id int64 }
	var mu sync.Mutex
	seen := map[int64]int{}
	err := Run(n, workers, func(int) (*res, error) {
		return &res{id: made.Add(1)}, nil
	}, func(r *res, i int) error {
		mu.Lock()
		seen[r.id]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if made.Load() > workers {
		t.Errorf("constructed %d resources for %d workers", made.Load(), workers)
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != n {
		t.Errorf("tasks seen %d, want %d", total, n)
	}
}

func TestRunZeroTasks(t *testing.T) {
	called := false
	if err := Run(0, 4, func(int) (int, error) { called = true; return 0, nil },
		func(int, int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("zero-task run constructed a worker or ran a task")
	}
}

func TestMemoCache(t *testing.T) {
	c := NewMemoCache()
	if _, ok := c.Get(42); ok {
		t.Error("empty cache reported a hit")
	}
	c.Put(42, 1.5)
	v, ok := c.Get(42)
	if !ok || v != 1.5 {
		t.Errorf("Get(42) = %v, %v", v, ok)
	}
	c.Put(42, 2.5)
	if v, _ := c.Get(42); v != 2.5 {
		t.Errorf("overwrite lost: %v", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestMemoCacheConcurrent(t *testing.T) {
	// Exercised under -race: concurrent readers and writers must be safe.
	c := NewMemoCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := uint64(i % 37)
				if g%2 == 0 {
					c.Put(key, float64(i))
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestObserverReportsTaskCounts(t *testing.T) {
	type obs struct {
		workers int
		counts  []int
	}
	var got []obs
	SetObserver(func(workers int, tasksPerWorker []int) {
		counts := append([]int(nil), tasksPerWorker...)
		got = append(got, obs{workers, counts})
	})
	defer SetObserver(nil)

	if err := ForEach(7, 1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(7, 3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(got))
	}
	if got[0].workers != 1 || len(got[0].counts) != 1 || got[0].counts[0] != 7 {
		t.Errorf("inline run observation = %+v", got[0])
	}
	if got[1].workers != 3 || len(got[1].counts) != 3 {
		t.Fatalf("parallel run observation = %+v", got[1])
	}
	sum := 0
	for _, c := range got[1].counts {
		sum += c
	}
	if sum != 7 {
		t.Errorf("per-worker counts sum to %d, want 7", sum)
	}

	SetObserver(nil)
	if err := ForEach(2, 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Error("observer fired after uninstall")
	}
}
