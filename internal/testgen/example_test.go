package testgen_test

import (
	"fmt"
	"os"

	"repro/internal/testgen"
)

// ExampleParseMarch parses the literature's element notation into a
// runnable March algorithm.
func ExampleParseMarch() {
	alg, err := testgen.ParseMarch("March C-",
		"a(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); a(r0)")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s is a %dN algorithm: %s\n", alg.Name, alg.Complexity(), testgen.FormatMarch(alg))
	// Output: March C- is a 10N algorithm: a(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); a(r0)
}

// ExampleMarchTest expands an algorithm over an address window into the
// vector sequence an ATE applies.
func ExampleMarchTest() {
	t, err := testgen.MarchTest(testgen.MATSPlus(), 0, 4, 0, testgen.NominalConditions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d vectors; first four:\n", len(t.Seq))
	for _, v := range t.Seq[:4] {
		fmt.Println(v)
	}
	// Output:
	// 20 vectors; first four:
	// W @0000=00000000
	// W @0001=00000000
	// W @0002=00000000
	// W @0003=00000000
}

// ExampleWriteTests serializes a test to the text vector-file format.
func ExampleWriteTests() {
	t := testgen.Test{
		Name: "demo",
		Seq: testgen.Sequence{
			{Op: testgen.OpWrite, Addr: 4, Data: 0xDEADBEEF},
			{Op: testgen.OpRead, Addr: 4},
		},
		Cond: testgen.NominalConditions(),
	}
	if err := testgen.WriteTests(os.Stdout, []testgen.Test{t}); err != nil {
		panic(err)
	}
	// Output:
	// test demo
	// cond vdd=1.8 temp=25 clock=100
	// W 4 DEADBEEF
	// R 4
	// end
}
