package testgen

import (
	"strings"
	"testing"
)

func TestMarchComplexities(t *testing.T) {
	cases := []struct {
		alg  MarchAlgorithm
		want int
	}{
		{MarchCMinus(), 10},
		{MarchB(), 17},
		{MATSPlus(), 5},
	}
	for _, c := range cases {
		if got := c.alg.Complexity(); got != c.want {
			t.Errorf("%s complexity = %d, want %dN", c.alg.Name, got, c.want)
		}
	}
}

func TestMarchTestLength(t *testing.T) {
	tt, err := MarchTest(MarchCMinus(), 0, 64, 0, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tt.Seq), 64*10; got != want {
		t.Errorf("March C- over 64 words has %d vectors, want %d", got, want)
	}
}

func TestMarchTestZeroWindow(t *testing.T) {
	if _, err := MarchTest(MarchCMinus(), 0, 0, 0, NominalConditions()); err == nil {
		t.Error("zero-word window accepted")
	}
}

func TestMarchAddressesStayInWindow(t *testing.T) {
	const base, words = 100, 32
	tt, err := MarchTest(MarchB(), base, words, 0x55555555, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tt.Seq {
		if v.Addr < base || v.Addr >= base+words {
			t.Fatalf("vector %d address %d outside window [%d, %d)", i, v.Addr, base, base+words)
		}
	}
}

func TestMarchDownElementDescends(t *testing.T) {
	// March C- element 3 (index 3) is ⇓(r0,w1): within the expansion the
	// down elements must walk addresses in descending order.
	alg := MarchAlgorithm{
		Name:     "down-only",
		Elements: []MarchElement{{OrderDown, []MarchOp{{Write: true, Background: true}}}},
	}
	tt, err := MarchTest(alg, 0, 8, 0, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tt.Seq); i++ {
		if tt.Seq[i].Addr >= tt.Seq[i-1].Addr {
			t.Fatalf("down element not descending at %d: %d then %d", i, tt.Seq[i-1].Addr, tt.Seq[i].Addr)
		}
	}
}

func TestMarchDataBackgroundAndComplement(t *testing.T) {
	const bg = 0x0F0F0F0F
	tt, err := MarchTest(MATSPlus(), 0, 4, bg, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	sawBG, sawComp := false, false
	for _, v := range tt.Seq {
		if v.Op != OpWrite {
			continue
		}
		switch v.Data {
		case bg:
			sawBG = true
		case ^uint32(bg):
			sawComp = true
		default:
			t.Fatalf("write data %08X is neither background nor complement", v.Data)
		}
	}
	if !sawBG || !sawComp {
		t.Error("MATS+ expansion missing background or complement writes")
	}
}

// TestMarchCMinusDetectsReadSemantics verifies the expansion is a
// functionally correct March: replaying it against a simple map-backed
// memory model, every read must observe the value the algorithm expects at
// that point (r0 sees background, r1 sees complement).
func TestMarchCMinusReadExpectations(t *testing.T) {
	const bg uint32 = 0
	tt, err := MarchTest(MarchCMinus(), 0, 16, bg, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	mem := make(map[uint32]uint32)
	// Reconstruct expectations by replaying: each read must return the
	// last written value (or zero) — and March C- is built so reads always
	// target a deterministic value, never an uninitialized cell after the
	// first element.
	firstElemLen := 16 // ⇕(w0) over 16 words
	for i, v := range tt.Seq {
		switch v.Op {
		case OpWrite:
			mem[v.Addr] = v.Data
		case OpRead:
			if i < firstElemLen {
				t.Fatalf("read before initializing element at vector %d", i)
			}
			if _, ok := mem[v.Addr]; !ok {
				t.Fatalf("vector %d reads uninitialized address %d", i, v.Addr)
			}
		}
	}
}

func TestMarchSuite(t *testing.T) {
	suite, err := MarchSuite(MarchCMinus(), 0, 16, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != len(StandardBackgrounds()) {
		t.Fatalf("suite has %d tests, want %d", len(suite), len(StandardBackgrounds()))
	}
	names := make(map[string]bool)
	for _, tt := range suite {
		if names[tt.Name] {
			t.Fatalf("duplicate suite test name %q", tt.Name)
		}
		names[tt.Name] = true
		if !strings.Contains(tt.Name, "bg=") {
			t.Errorf("suite test name %q missing background tag", tt.Name)
		}
	}
}
