package testgen

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestVectorFileRoundTrip(t *testing.T) {
	gen := newGen(51)
	orig := gen.Batch(5)
	march, err := MarchTest(MarchCMinus(), 0, 16, 0x55555555, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	orig = append(orig, march)
	orig = append(orig, Test{
		Name: "with-nops",
		Seq:  Sequence{{Op: OpNop}, {Op: OpWrite, Addr: 1, Data: 2}, {Op: OpNop}, {Op: OpRead, Addr: 1}},
		Cond: Conditions{VddV: 1.62, TempC: -40, ClockMHz: 133},
	})

	var buf bytes.Buffer
	if err := WriteTests(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTests(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip: %d tests, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Name != orig[i].Name {
			t.Errorf("test %d name %q vs %q", i, got[i].Name, orig[i].Name)
		}
		if !reflect.DeepEqual(got[i].Seq, orig[i].Seq) {
			t.Errorf("test %d sequence mangled", i)
		}
		c1, c2 := got[i].Cond, orig[i].Cond
		if abs64(c1.VddV-c2.VddV) > 1e-3 || abs64(c1.TempC-c2.TempC) > 1e-2 || abs64(c1.ClockMHz-c2.ClockMHz) > 1e-2 {
			t.Errorf("test %d conditions %+v vs %+v", i, c1, c2)
		}
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestWriteTestsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTests(&buf, []Test{{Name: ""}}); err == nil {
		t.Error("unnamed test accepted")
	}
	if err := WriteTests(&buf, []Test{{Name: "has\nnewline"}}); err == nil {
		t.Error("newline name accepted")
	}
	if err := WriteTests(&buf, []Test{{Name: "x", Seq: Sequence{{Op: OpKind(9)}}}}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestReadTestsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
test T1

cond vdd=1.8
W A 55
# mid-block comment
R A
end
`
	tests, err := ReadTests(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 1 || len(tests[0].Seq) != 2 {
		t.Fatalf("parsed %+v", tests)
	}
	if tests[0].Seq[0].Addr != 0xA || tests[0].Seq[0].Data != 0x55 {
		t.Error("hex fields misparsed")
	}
	// Unset conditions default to nominal.
	if tests[0].Cond.TempC != 25 || tests[0].Cond.ClockMHz != 100 {
		t.Errorf("partial cond defaults: %+v", tests[0].Cond)
	}
}

func TestReadTestsErrors(t *testing.T) {
	cases := map[string]string{
		"vector outside block": "W 1 2\n",
		"nested test":          "test A\ntest B\n",
		"bad directive":        "test A\nQ 1\nend\n",
		"bad write":            "test A\nW 1\nend\n",
		"bad hex":              "test A\nW ZZ 1\nend\n",
		"bad cond":             "test A\ncond vdd=abc\nend\n",
		"unknown cond":         "test A\ncond humidity=1\nend\n",
		"malformed cond":       "test A\ncond vdd\nend\n",
		"unterminated":         "test A\nR 1\n",
		"stray end":            "end\n",
		"test without name":    "test\n",
	}
	for name, src := range cases {
		if _, err := ReadTests(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestReadTestsEmpty(t *testing.T) {
	tests, err := ReadTests(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 0 {
		t.Errorf("parsed %d tests from empty input", len(tests))
	}
}
