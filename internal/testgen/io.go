package testgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text vector format. Worst-case tests leave the flow as pattern files a
// test engineer can load, diff and edit — a minimal ATE-style format:
//
//	# optional comments
//	test NAME
//	cond vdd=1.80 temp=25 clock=100
//	W 0004 DEADBEEF
//	R 0008
//	N
//	end
//
// Addresses and data are hexadecimal; W is a write (address, data), R a
// read (address), N an idle cycle. Multiple tests may follow each other in
// one file.

// WriteTests serializes tests to the text vector format.
func WriteTests(w io.Writer, tests []Test) error {
	bw := bufio.NewWriter(w)
	for _, t := range tests {
		if strings.ContainsAny(t.Name, "\n\r") {
			return fmt.Errorf("testgen: test name %q contains a newline", t.Name)
		}
		if t.Name == "" {
			return fmt.Errorf("testgen: cannot serialize an unnamed test")
		}
		fmt.Fprintf(bw, "test %s\n", t.Name)
		fmt.Fprintf(bw, "cond vdd=%.4g temp=%.4g clock=%.5g\n",
			t.Cond.VddV, t.Cond.TempC, t.Cond.ClockMHz)
		for _, v := range t.Seq {
			switch v.Op {
			case OpWrite:
				fmt.Fprintf(bw, "W %X %X\n", v.Addr, v.Data)
			case OpRead:
				fmt.Fprintf(bw, "R %X\n", v.Addr)
			case OpNop:
				fmt.Fprintln(bw, "N")
			default:
				return fmt.Errorf("testgen: test %s: unknown op %d", t.Name, v.Op)
			}
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// ReadTests parses the text vector format.
func ReadTests(r io.Reader) ([]Test, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	var (
		tests []Test
		cur   *Test
		line  int
	)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("testgen: line %d: %s", line, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "test":
			if cur != nil {
				return nil, fail("nested test block (missing 'end')")
			}
			name := strings.TrimSpace(strings.TrimPrefix(text, "test"))
			if name == "" {
				return nil, fail("'test' needs a name")
			}
			cur = &Test{Name: name, Cond: NominalConditions()}
		case "cond":
			if cur == nil {
				return nil, fail("'cond' outside a test block")
			}
			for _, kv := range fields[1:] {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fail("malformed condition %q", kv)
				}
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fail("condition %s: %v", key, err)
				}
				switch key {
				case "vdd":
					cur.Cond.VddV = f
				case "temp":
					cur.Cond.TempC = f
				case "clock":
					cur.Cond.ClockMHz = f
				default:
					return nil, fail("unknown condition %q", key)
				}
			}
		case "W":
			if cur == nil {
				return nil, fail("vector outside a test block")
			}
			if len(fields) != 3 {
				return nil, fail("write needs address and data")
			}
			addr, err := strconv.ParseUint(fields[1], 16, 32)
			if err != nil {
				return nil, fail("write address: %v", err)
			}
			data, err := strconv.ParseUint(fields[2], 16, 32)
			if err != nil {
				return nil, fail("write data: %v", err)
			}
			cur.Seq = append(cur.Seq, Vector{Op: OpWrite, Addr: uint32(addr), Data: uint32(data)})
		case "R":
			if cur == nil {
				return nil, fail("vector outside a test block")
			}
			if len(fields) != 2 {
				return nil, fail("read needs an address")
			}
			addr, err := strconv.ParseUint(fields[1], 16, 32)
			if err != nil {
				return nil, fail("read address: %v", err)
			}
			cur.Seq = append(cur.Seq, Vector{Op: OpRead, Addr: uint32(addr)})
		case "N":
			if cur == nil {
				return nil, fail("vector outside a test block")
			}
			cur.Seq = append(cur.Seq, Vector{Op: OpNop})
		case "end":
			if cur == nil {
				return nil, fail("'end' outside a test block")
			}
			tests = append(tests, *cur)
			cur = nil
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("testgen: unterminated test block %q", cur.Name)
	}
	return tests, nil
}
