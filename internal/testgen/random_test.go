package testgen

import (
	"reflect"
	"testing"
)

func newGen(seed int64) *RandomGenerator {
	return NewRandomGenerator(seed, 4096, DefaultConditionLimits())
}

func TestRandomGeneratorDeterminism(t *testing.T) {
	g1, g2 := newGen(7), newGen(7)
	for i := 0; i < 20; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Name != b.Name || !reflect.DeepEqual(a.Seq, b.Seq) || a.Cond != b.Cond {
			t.Fatalf("same-seed generators diverged at test %d", i)
		}
	}
}

func TestRandomGeneratorSeedsDiffer(t *testing.T) {
	a, b := newGen(1).Next(), newGen(2).Next()
	if reflect.DeepEqual(a.Seq, b.Seq) {
		t.Error("different seeds produced identical sequences")
	}
}

func TestRandomSequenceLengthBounds(t *testing.T) {
	g := newGen(3)
	for i := 0; i < 200; i++ {
		tt := g.Next()
		if len(tt.Seq) < MinSequenceLen || len(tt.Seq) > MaxSequenceLen {
			t.Fatalf("sequence length %d outside [%d, %d]", len(tt.Seq), MinSequenceLen, MaxSequenceLen)
		}
	}
}

func TestRandomSequencesValidate(t *testing.T) {
	g := newGen(4)
	for i := 0; i < 100; i++ {
		tt := g.Next()
		if err := tt.Seq.Validate(g.AddrSpace()); err != nil {
			t.Fatalf("generated sequence invalid: %v", err)
		}
	}
}

func TestRandomConditionsInLimits(t *testing.T) {
	g := newGen(5)
	l := g.Limits()
	for i := 0; i < 100; i++ {
		c := g.Conditions()
		if !l.Contains(c) {
			t.Fatalf("generated conditions %+v outside limits", c)
		}
	}
}

func TestFixedConditions(t *testing.T) {
	g := newGen(6)
	fixed := NominalConditions()
	g.FixedConditions = &fixed
	for i := 0; i < 20; i++ {
		if c := g.Next().Cond; c != fixed {
			t.Fatalf("fixed conditions not honored: got %+v", c)
		}
	}
}

func TestRandomTestNamesUnique(t *testing.T) {
	g := newGen(8)
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		name := g.Next().Name
		if seen[name] {
			t.Fatalf("duplicate test name %q", name)
		}
		seen[name] = true
	}
}

func TestRandomStylesVary(t *testing.T) {
	// The generator must produce visibly different activity across tests —
	// the premise of the multiple-trip-point concept. Verify the mean
	// address stride varies widely over a batch.
	g := newGen(9)
	limits := g.Limits()
	minATD, maxATD := 1.0, 0.0
	for i := 0; i < 100; i++ {
		f := ExtractFeatures(g.Next(), limits)
		if f[FeatATDMean] < minATD {
			minATD = f[FeatATDMean]
		}
		if f[FeatATDMean] > maxATD {
			maxATD = f[FeatATDMean]
		}
	}
	if maxATD-minATD < 0.1 {
		t.Errorf("address-transition density spread %g too small; generator styles indistinct", maxATD-minATD)
	}
}

func TestPerturbSequence(t *testing.T) {
	g := newGen(10)
	orig := g.Sequence(500)

	same := g.PerturbSequence(orig, 0)
	if !reflect.DeepEqual(same, orig) {
		t.Error("zero-rate perturbation altered the sequence")
	}

	all := g.PerturbSequence(orig, 1)
	if len(all) != len(orig) {
		t.Fatalf("perturbation changed length %d → %d", len(orig), len(all))
	}
	diff := 0
	for i := range all {
		if all[i] != orig[i] {
			diff++
		}
	}
	if diff < len(orig)/2 {
		t.Errorf("rate-1 perturbation changed only %d/%d vectors", diff, len(orig))
	}
	if err := all.Validate(g.AddrSpace()); err != nil {
		t.Errorf("perturbed sequence invalid: %v", err)
	}
}

func TestBatch(t *testing.T) {
	g := newGen(11)
	b := g.Batch(7)
	if len(b) != 7 {
		t.Fatalf("Batch(7) returned %d tests", len(b))
	}
}

func TestNewRandomGeneratorPanicsOnZeroAddrSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero address space did not panic")
		}
	}()
	NewRandomGenerator(1, 0, DefaultConditionLimits())
}
