package testgen

import (
	"testing"
	"testing/quick"
)

func TestFeatureNamesAligned(t *testing.T) {
	if got := len(FeatureNames()); got != NumFeatures {
		t.Fatalf("FeatureNames has %d entries, NumFeatures is %d", got, NumFeatures)
	}
}

func TestExtractFeaturesEmpty(t *testing.T) {
	f := ExtractFeatures(Test{}, DefaultConditionLimits())
	if len(f) != NumFeatures {
		t.Fatalf("feature vector length %d, want %d", len(f), NumFeatures)
	}
	for i, v := range f {
		if v != 0 {
			t.Errorf("empty test feature %s = %g, want 0", FeatureNames()[i], v)
		}
	}
}

func TestExtractFeaturesRange(t *testing.T) {
	g := newGen(21)
	limits := g.Limits()
	for i := 0; i < 100; i++ {
		f := ExtractFeatures(g.Next(), limits)
		for j, v := range f {
			if v < 0 || v > 1 {
				t.Fatalf("feature %s = %g outside [0,1]", FeatureNames()[j], v)
			}
		}
	}
}

func TestExtractFeaturesRangeProperty(t *testing.T) {
	limits := DefaultConditionLimits()
	f := func(seed int64, n uint8) bool {
		g := NewRandomGenerator(seed, 4096, limits)
		tt := Test{Seq: g.Sequence(int(n%200) + 2), Cond: g.Conditions()}
		for _, v := range ExtractFeatures(tt, limits) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadWriteRatios(t *testing.T) {
	seq := Sequence{
		{Op: OpRead, Addr: 0}, {Op: OpRead, Addr: 1},
		{Op: OpWrite, Addr: 2, Data: 1}, {Op: OpNop},
	}
	f := ExtractFeatures(Test{Seq: seq, Cond: NominalConditions()}, DefaultConditionLimits())
	if got := f[FeatReadRatio]; got != 0.5 {
		t.Errorf("read ratio %g, want 0.5", got)
	}
	if got := f[FeatWriteRatio]; got != 0.25 {
		t.Errorf("write ratio %g, want 0.25", got)
	}
}

func TestBurstinessOnSequentialWalk(t *testing.T) {
	seq := make(Sequence, 100)
	for i := range seq {
		seq[i] = Vector{Op: OpRead, Addr: uint32(i)}
	}
	f := ExtractFeatures(Test{Seq: seq, Cond: NominalConditions()}, DefaultConditionLimits())
	if f[FeatBurstiness] < 0.9 {
		t.Errorf("sequential walk burstiness %g, want ≈1", f[FeatBurstiness])
	}
	if f[FeatLocality] < 0.9 {
		t.Errorf("sequential walk locality %g, want ≈1", f[FeatLocality])
	}
}

func TestCheckerboardAffinity(t *testing.T) {
	seq := make(Sequence, 64)
	for i := range seq {
		d := uint32(0x55555555)
		if i%2 == 1 {
			d = 0xAAAAAAAA
		}
		seq[i] = Vector{Op: OpWrite, Addr: uint32(i), Data: d}
	}
	f := ExtractFeatures(Test{Seq: seq, Cond: NominalConditions()}, DefaultConditionLimits())
	if f[FeatCheckerboard] != 1 {
		t.Errorf("checkerboard affinity %g, want 1", f[FeatCheckerboard])
	}
	if f[FeatInvertRate] < 0.9 {
		t.Errorf("invert rate %g, want ≈1 for alternating complement writes", f[FeatInvertRate])
	}
}

func TestCouplingFeature(t *testing.T) {
	// Adjacent-address complementary writes are exactly the coupling motif.
	seq := make(Sequence, 100)
	for i := range seq {
		d := uint32(0)
		if i%2 == 1 {
			d = 0xFFFFFFFF
		}
		seq[i] = Vector{Op: OpWrite, Addr: uint32(i%2 + 100), Data: d}
	}
	f := ExtractFeatures(Test{Seq: seq, Cond: NominalConditions()}, DefaultConditionLimits())
	if f[FeatCoupling] < 0.9 {
		t.Errorf("coupling feature %g, want ≈1", f[FeatCoupling])
	}

	// Far-apart writes must not count as coupling.
	for i := range seq {
		seq[i].Addr = uint32(i%2) * 512
	}
	f = ExtractFeatures(Test{Seq: seq, Cond: NominalConditions()}, DefaultConditionLimits())
	if f[FeatCoupling] != 0 {
		t.Errorf("far-write coupling feature %g, want 0", f[FeatCoupling])
	}
}

func TestConditionFeaturesNormalized(t *testing.T) {
	limits := DefaultConditionLimits()
	lo := Test{Seq: Sequence{{Op: OpNop}}, Cond: Conditions{VddV: limits.VddMin, TempC: limits.TempMin, ClockMHz: limits.ClockMin}}
	hi := Test{Seq: Sequence{{Op: OpNop}}, Cond: Conditions{VddV: limits.VddMax, TempC: limits.TempMax, ClockMHz: limits.ClockMax}}
	fl := ExtractFeatures(lo, limits)
	fh := ExtractFeatures(hi, limits)
	for _, idx := range []int{FeatVdd, FeatTemp, FeatClock} {
		if fl[idx] != 0 {
			t.Errorf("low condition feature %s = %g, want 0", FeatureNames()[idx], fl[idx])
		}
		if fh[idx] != 1 {
			t.Errorf("high condition feature %s = %g, want 1", FeatureNames()[idx], fh[idx])
		}
	}
}

func TestFeatureDiscriminatesActivity(t *testing.T) {
	// A ping-pong complementary-address pattern must show much higher ATD
	// than a sequential walk — the NN's signal depends on it.
	pp := make(Sequence, 100)
	for i := range pp {
		addr := uint32(0)
		if i%2 == 1 {
			addr = 4095
		}
		pp[i] = Vector{Op: OpRead, Addr: addr}
	}
	seqWalk := make(Sequence, 100)
	for i := range seqWalk {
		seqWalk[i] = Vector{Op: OpRead, Addr: uint32(i)}
	}
	limits := DefaultConditionLimits()
	fp := ExtractFeatures(Test{Seq: pp, Cond: NominalConditions()}, limits)
	fs := ExtractFeatures(Test{Seq: seqWalk, Cond: NominalConditions()}, limits)
	if fp[FeatATDMean] <= fs[FeatATDMean]+0.2 {
		t.Errorf("ping-pong ATD %g not clearly above sequential %g", fp[FeatATDMean], fs[FeatATDMean])
	}
	if fp[FeatPingPong] <= fs[FeatPingPong] {
		t.Errorf("ping-pong score %g not above sequential %g", fp[FeatPingPong], fs[FeatPingPong])
	}
}
