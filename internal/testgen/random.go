package testgen

import (
	"fmt"
	"math/rand"
)

// RandomGenerator produces non-deterministic random tests in the sense of §3
// of the paper: random sequences of reads and writes with structured data
// backgrounds and address strides, plus randomized test conditions. All
// randomness flows from the seed handed to NewRandomGenerator so runs are
// reproducible.
//
// The generator deliberately mixes several pattern "styles" (uniform random,
// strided sweeps, burst traffic, ping-pong addressing) because a pure
// uniform generator would produce statistically indistinguishable activity
// from test to test and the paper's whole premise is that different tests
// provoke different trip points.
type RandomGenerator struct {
	rng       *rand.Rand
	addrSpace uint32
	limits    ConditionLimits
	count     int

	// FixedConditions, when non-nil, pins every generated test to the given
	// conditions instead of randomizing them. Table 1 fixes Vdd at 1.8 V.
	FixedConditions *Conditions

	// UniformOnly restricts generation to uniform addressing and uniform
	// data — the naive random generator the styled one is ablated against.
	// Styled generation exists because uniform tests are statistically
	// indistinguishable from each other: their trip points cluster tightly
	// and the NN sees almost no severity spread to learn from.
	UniformOnly bool
}

// NewRandomGenerator returns a seeded generator for the given address space.
func NewRandomGenerator(seed int64, addrSpace uint32, limits ConditionLimits) *RandomGenerator {
	if addrSpace == 0 {
		panic("testgen: zero address space")
	}
	return &RandomGenerator{
		rng:       rand.New(rand.NewSource(seed)),
		addrSpace: addrSpace,
		limits:    limits,
	}
}

// dataStyle selects how the data word of a vector is drawn.
type dataStyle int

const (
	dataUniform dataStyle = iota
	dataCheckerboard
	dataStripes
	dataInverting
	dataSparse
)

// addrStyle selects how addresses walk through the array.
type addrStyle int

const (
	addrUniform addrStyle = iota
	addrStride
	addrPingPong
	addrBurst
	addrRowSweep
)

// Next generates the next random test. Sequence length is uniform in
// [MinSequenceLen, MaxSequenceLen].
func (g *RandomGenerator) Next() Test {
	g.count++
	n := MinSequenceLen + g.rng.Intn(MaxSequenceLen-MinSequenceLen+1)
	seq := g.Sequence(n)
	cond := g.Conditions()
	return Test{
		Name: fmt.Sprintf("RND-%04d", g.count),
		Seq:  seq,
		Cond: cond,
	}
}

// Conditions draws random test conditions inside the limits, or the fixed
// conditions if configured.
func (g *RandomGenerator) Conditions() Conditions {
	if g.FixedConditions != nil {
		return *g.FixedConditions
	}
	uni := func(lo, hi float64) float64 { return lo + g.rng.Float64()*(hi-lo) }
	return Conditions{
		VddV:     uni(g.limits.VddMin, g.limits.VddMax),
		TempC:    uni(g.limits.TempMin, g.limits.TempMax),
		ClockMHz: uni(g.limits.ClockMin, g.limits.ClockMax),
	}
}

// Sequence generates a random sequence of exactly n vectors.
func (g *RandomGenerator) Sequence(n int) Sequence {
	if g.UniformOnly {
		return g.styledSequence(n, dataUniform, addrUniform, 0.3+0.5*g.rng.Float64())
	}
	ds := dataStyle(g.rng.Intn(5))
	as := addrStyle(g.rng.Intn(5))
	readBias := 0.3 + 0.5*g.rng.Float64() // fraction of reads
	return g.styledSequence(n, ds, as, readBias)
}

func (g *RandomGenerator) styledSequence(n int, ds dataStyle, as addrStyle, readBias float64) Sequence {
	seq := make(Sequence, 0, n)
	addr := uint32(g.rng.Intn(int(g.addrSpace)))
	stride := uint32(1 + g.rng.Intn(64))
	burstLen := 2 + g.rng.Intn(14)
	inBurst := 0
	pingA := addr
	pingB := uint32(g.rng.Intn(int(g.addrSpace)))
	invert := false

	for i := 0; i < n; i++ {
		// Address walk.
		switch as {
		case addrUniform:
			addr = uint32(g.rng.Intn(int(g.addrSpace)))
		case addrStride:
			addr = (addr + stride) % g.addrSpace
		case addrPingPong:
			if i%2 == 0 {
				addr = pingA
			} else {
				addr = pingB
			}
		case addrBurst:
			if inBurst == 0 {
				addr = uint32(g.rng.Intn(int(g.addrSpace)))
				inBurst = burstLen
			} else {
				addr = (addr + 1) % g.addrSpace
				inBurst--
			}
		case addrRowSweep:
			addr = (addr + 1) % g.addrSpace
		}

		// Data word.
		var data uint32
		switch ds {
		case dataUniform:
			data = g.rng.Uint32()
		case dataCheckerboard:
			if (addr^uint32(i))&1 == 0 {
				data = 0x55555555
			} else {
				data = 0xAAAAAAAA
			}
		case dataStripes:
			if i&1 == 0 {
				data = 0x0F0F0F0F
			} else {
				data = 0xF0F0F0F0
			}
		case dataInverting:
			if invert {
				data = 0xFFFFFFFF
			} else {
				data = 0x00000000
			}
			invert = !invert
		case dataSparse:
			data = 1 << uint(g.rng.Intn(32))
		}

		op := OpRead
		if g.rng.Float64() > readBias {
			op = OpWrite
		}
		if op == OpRead {
			data = 0
		}
		seq = append(seq, Vector{Op: op, Addr: addr, Data: data})
	}
	return seq
}

// Batch generates n tests.
func (g *RandomGenerator) Batch(n int) []Test {
	out := make([]Test, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// PerturbSequence returns a copy of seq with roughly rate·len(seq) vectors
// re-drawn. The GA mutation operator delegates here so mutated sequences
// stay inside the generator's address space.
func (g *RandomGenerator) PerturbSequence(seq Sequence, rate float64) Sequence {
	out := seq.Clone()
	for i := range out {
		if g.rng.Float64() < rate {
			op := OpRead
			if g.rng.Float64() < 0.5 {
				op = OpWrite
			}
			v := Vector{Op: op, Addr: uint32(g.rng.Intn(int(g.addrSpace)))}
			if op == OpWrite {
				v.Data = g.rng.Uint32()
			}
			out[i] = v
		}
	}
	return out
}

// AddrSpace returns the address-space size the generator draws from.
func (g *RandomGenerator) AddrSpace() uint32 { return g.addrSpace }

// Limits returns the condition limits the generator draws from.
func (g *RandomGenerator) Limits() ConditionLimits { return g.limits }
