package testgen

import "testing"

func fpTest() Test {
	return Test{
		Name: "fp-sample",
		Seq: Sequence{
			{Op: OpWrite, Addr: 4, Data: 0xDEADBEEF},
			{Op: OpRead, Addr: 4},
			{Op: OpNop},
		},
		Cond: NominalConditions(),
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := fpTest(), fpTest()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical tests hash differently")
	}
	if a.Clone().Fingerprint() != a.Fingerprint() {
		t.Error("clone hashes differently from original")
	}
}

func TestFingerprintIgnoresName(t *testing.T) {
	a, b := fpTest(), fpTest()
	b.Name = "something-else"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on the test name")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpTest()
	mutations := map[string]func(*Test){
		"op":        func(tt *Test) { tt.Seq[0].Op = OpRead },
		"addr":      func(tt *Test) { tt.Seq[1].Addr = 5 },
		"data":      func(tt *Test) { tt.Seq[0].Data = 0xDEADBEF0 },
		"truncated": func(tt *Test) { tt.Seq = tt.Seq[:2] },
		"vdd":       func(tt *Test) { tt.Cond.VddV += 1e-9 },
		"temp":      func(tt *Test) { tt.Cond.TempC = 26 },
		"clock":     func(tt *Test) { tt.Cond.ClockMHz = 101 },
	}
	for name, mutate := range mutations {
		tt := base.Clone()
		mutate(&tt)
		if tt.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s mutation did not change the fingerprint", name)
		}
	}
}

func TestFingerprintLengthFraming(t *testing.T) {
	// A NOP-padded sequence must not collide with its unpadded form even
	// though OpNop contributes the same bytes per vector.
	a := Test{Seq: Sequence{{Op: OpNop}}, Cond: NominalConditions()}
	b := Test{Seq: Sequence{{Op: OpNop}, {Op: OpNop}}, Cond: NominalConditions()}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("sequences of different length collide")
	}
}

func TestFingerprintRandomCollisionFree(t *testing.T) {
	// 500 generator tests must produce 500 distinct fingerprints — a
	// collision here would silently alias two individuals in the GA cache.
	gen := NewRandomGenerator(7, 1024, DefaultConditionLimits())
	seen := make(map[uint64]string, 500)
	for i := 0; i < 500; i++ {
		tt := gen.Next()
		fp := tt.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision between %s and %s", prev, tt.Name)
		}
		seen[fp] = tt.Name
	}
}
