package testgen

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpKindString(t *testing.T) {
	cases := []struct {
		op   OpKind
		want string
	}{
		{OpNop, "NOP"},
		{OpWrite, "W"},
		{OpRead, "R"},
		{OpKind(9), "OpKind(9)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("OpKind(%d).String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{Op: OpWrite, Addr: 4, Data: 0xDEADBEEF}
	if got := v.String(); got != "W @0004=DEADBEEF" {
		t.Errorf("write vector string = %q", got)
	}
	r := Vector{Op: OpRead, Addr: 0x1F}
	if got := r.String(); got != "R @001F" {
		t.Errorf("read vector string = %q", got)
	}
	if got := (Vector{}).String(); got != "NOP" {
		t.Errorf("nop vector string = %q", got)
	}
}

func TestSequenceCounts(t *testing.T) {
	s := Sequence{
		{Op: OpWrite, Addr: 0},
		{Op: OpRead, Addr: 1},
		{Op: OpRead, Addr: 2},
		{Op: OpNop},
	}
	if got := s.Reads(); got != 2 {
		t.Errorf("Reads = %d, want 2", got)
	}
	if got := s.Writes(); got != 1 {
		t.Errorf("Writes = %d, want 1", got)
	}
}

func TestSequenceCloneIndependence(t *testing.T) {
	s := Sequence{{Op: OpWrite, Addr: 1, Data: 2}}
	c := s.Clone()
	c[0].Data = 99
	if s[0].Data != 2 {
		t.Error("Clone shares backing storage with the original")
	}
}

func TestSequenceValidate(t *testing.T) {
	if err := (Sequence{}).Validate(16); err == nil {
		t.Error("empty sequence should not validate")
	}
	ok := Sequence{{Op: OpRead, Addr: 15}}
	if err := ok.Validate(16); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	bad := Sequence{{Op: OpRead, Addr: 16}}
	if err := bad.Validate(16); err == nil {
		t.Error("out-of-range address accepted")
	}
	badOp := Sequence{{Op: OpKind(7), Addr: 0}}
	if err := badOp.Validate(16); err == nil {
		t.Error("unknown op accepted")
	}
	// Nop addresses are not checked: the bus is idle.
	nop := Sequence{{Op: OpNop, Addr: 999}}
	if err := nop.Validate(16); err != nil {
		t.Errorf("nop with large addr rejected: %v", err)
	}
}

func TestConditionLimitsClamp(t *testing.T) {
	l := DefaultConditionLimits()
	c := l.Clamp(Conditions{VddV: 99, TempC: -300, ClockMHz: 1})
	if c.VddV != l.VddMax {
		t.Errorf("Vdd clamped to %g, want %g", c.VddV, l.VddMax)
	}
	if c.TempC != l.TempMin {
		t.Errorf("Temp clamped to %g, want %g", c.TempC, l.TempMin)
	}
	if c.ClockMHz != l.ClockMin {
		t.Errorf("Clock clamped to %g, want %g", c.ClockMHz, l.ClockMin)
	}
	nominal := NominalConditions()
	if got := l.Clamp(nominal); got != nominal {
		t.Errorf("nominal conditions altered by clamp: %+v", got)
	}
}

func TestConditionLimitsClampProperty(t *testing.T) {
	l := DefaultConditionLimits()
	f := func(v, temp, clk float64) bool {
		return l.Contains(l.Clamp(Conditions{VddV: v, TempC: temp, ClockMHz: clk}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConditionLimitsContains(t *testing.T) {
	l := DefaultConditionLimits()
	if !l.Contains(NominalConditions()) {
		t.Error("nominal conditions outside default limits")
	}
	if l.Contains(Conditions{VddV: 0.5, TempC: 25, ClockMHz: 100}) {
		t.Error("0.5 V inside 1.4–2.2 V limits")
	}
}

func TestTestString(t *testing.T) {
	tt := Test{
		Name: "T1",
		Seq:  Sequence{{Op: OpRead, Addr: 0}, {Op: OpWrite, Addr: 1, Data: 5}},
		Cond: NominalConditions(),
	}
	s := tt.String()
	for _, want := range []string{"T1", "2 vectors", "1R/1W", "1.80V"} {
		if !strings.Contains(s, want) {
			t.Errorf("Test.String() = %q missing %q", s, want)
		}
	}
}

func TestTestCloneIndependence(t *testing.T) {
	orig := Test{Name: "X", Seq: Sequence{{Op: OpWrite, Addr: 3, Data: 4}}, Cond: NominalConditions()}
	c := orig.Clone()
	c.Seq[0].Addr = 77
	if orig.Seq[0].Addr != 3 {
		t.Error("Test.Clone shares sequence storage")
	}
}
