package testgen

import (
	"reflect"
	"sort"
	"testing"
)

func TestParseMarchASCIIEquivalentToBuiltin(t *testing.T) {
	parsed, err := ParseMarch("March C-", "a(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); a(r0)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Elements, MarchCMinus().Elements) {
		t.Error("parsed March C- differs from the built-in definition")
	}
}

func TestParseMarchUnicodeArrows(t *testing.T) {
	parsed, err := ParseMarch("March C-", "{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Elements, MarchCMinus().Elements) {
		t.Error("unicode notation parse differs from the built-in definition")
	}
}

func TestParseMarchErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"no marker":   "(w0)",
		"no parens":   "u w0",
		"empty ops":   "u()",
		"unknown op":  "u(w2)",
		"braces only": "{}",
	}
	for name, notation := range cases {
		if _, err := ParseMarch("x", notation); err == nil {
			t.Errorf("%s: notation %q accepted", name, notation)
		}
	}
}

func TestFormatMarchRoundTrip(t *testing.T) {
	for _, alg := range []MarchAlgorithm{MarchCMinus(), MarchB(), MATSPlus()} {
		notation := FormatMarch(alg)
		parsed, err := ParseMarch(alg.Name, notation)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		if !reflect.DeepEqual(parsed.Elements, alg.Elements) {
			t.Errorf("%s: round trip through %q changed the algorithm", alg.Name, notation)
		}
	}
}

func TestMarchLibrary(t *testing.T) {
	names := MarchLibraryNames()
	if len(names) < 8 {
		t.Fatalf("library has only %d algorithms", len(names))
	}
	sort.Strings(names)
	wantComplexities := map[string]int{
		"MATS":     4,
		"MATS+":    5,
		"MATS++":   6,
		"March X":  6,
		"March Y":  8,
		"March C-": 10,
		"March A":  15,
		"March B":  17,
		"March SS": 22,
		"March LR": 14,
	}
	for _, name := range names {
		alg, err := MarchFromLibrary(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want, ok := wantComplexities[name]; ok && alg.Complexity() != want {
			t.Errorf("%s complexity %dN, want %dN", name, alg.Complexity(), want)
		}
		// Every library algorithm must expand to a valid test.
		tt, err := MarchTest(alg, 0, 16, 0x55555555, NominalConditions())
		if err != nil {
			t.Fatalf("%s expansion: %v", name, err)
		}
		if err := tt.Seq.Validate(4096); err != nil {
			t.Fatalf("%s expansion invalid: %v", name, err)
		}
	}
	if _, err := MarchFromLibrary("March Z"); err == nil {
		t.Error("unknown library name accepted")
	}
}

func TestLibraryCMinusMatchesBuiltin(t *testing.T) {
	lib, err := MarchFromLibrary("March C-")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lib.Elements, MarchCMinus().Elements) {
		t.Error("library March C- differs from built-in")
	}
	libB, err := MarchFromLibrary("March B")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(libB.Elements, MarchB().Elements) {
		t.Error("library March B differs from built-in")
	}
}
