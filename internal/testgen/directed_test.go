package testgen

import (
	"strings"
	"testing"
)

func TestDirectedSuiteValidAndBounded(t *testing.T) {
	suite, err := DirectedSuite(4096, 16, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 5 {
		t.Fatalf("suite has %d patterns", len(suite))
	}
	names := map[string]bool{}
	for _, tt := range suite {
		if names[tt.Name] {
			t.Errorf("duplicate directed name %q", tt.Name)
		}
		names[tt.Name] = true
		if err := tt.Seq.Validate(4096); err != nil {
			t.Errorf("%s invalid: %v", tt.Name, err)
		}
		if len(tt.Seq) > MaxSequenceLen {
			t.Errorf("%s length %d exceeds the short-sequence regime", tt.Name, len(tt.Seq))
		}
	}
}

func TestWalkingOnesTouchesEveryBit(t *testing.T) {
	tt, err := WalkingOnesAddr(4096, 200, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, v := range tt.Seq {
		seen[v.Addr] = true
	}
	for bit := uint32(1); bit < 4096; bit <<= 1 {
		if !seen[bit] {
			t.Errorf("walking ones never visited address %d", bit)
		}
	}
}

func TestAddressComplementMaximizesATD(t *testing.T) {
	tt, err := AddressComplement(4096, 400, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	f := ExtractFeatures(tt, DefaultConditionLimits())
	if f[FeatATDMean] < 0.7 {
		t.Errorf("butterfly ATD mean %.2f; complement addressing should be high", f[FeatATDMean])
	}
}

func TestRowHammerStaysInRow(t *testing.T) {
	tt, err := RowHammer(37, 16, 300, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	rowBase := uint32(37 - 37%16)
	for i, v := range tt.Seq {
		if v.Addr/16 != rowBase/16 {
			t.Fatalf("vector %d address %d left the aggressor row", i, v.Addr)
		}
	}
	if !strings.Contains(tt.Name, "ROWHAMMER") {
		t.Errorf("name %q", tt.Name)
	}
}

func TestBusThrashCouples(t *testing.T) {
	tt, err := BusThrash(4096, 400, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	f := ExtractFeatures(tt, DefaultConditionLimits())
	if f[FeatCoupling] < 0.9 {
		t.Errorf("bus thrash coupling %.2f, want ≈1", f[FeatCoupling])
	}
	if f[FeatInvertRate] < 0.9 {
		t.Errorf("bus thrash invert rate %.2f", f[FeatInvertRate])
	}
}

func TestCheckerboardReadsBackAll(t *testing.T) {
	tt, err := CheckerboardFill(10, 50, NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	if tt.Seq.Writes() != 50 || tt.Seq.Reads() != 50 {
		t.Errorf("checkerboard %dW/%dR, want 50/50", tt.Seq.Writes(), tt.Seq.Reads())
	}
}

func TestDirectedValidation(t *testing.T) {
	cond := NominalConditions()
	if _, err := WalkingOnesAddr(1, 100, cond); err == nil {
		t.Error("walking ones with 1 address accepted")
	}
	if _, err := WalkingOnesAddr(4096, 1, cond); err == nil {
		t.Error("walking ones with 1 cycle accepted")
	}
	if _, err := AddressComplement(1, 100, cond); err == nil {
		t.Error("butterfly with 1 address accepted")
	}
	if _, err := RowHammer(0, 1, 100, cond); err == nil {
		t.Error("row hammer with 1-word row accepted")
	}
	if _, err := BusThrash(2, 100, cond); err == nil {
		t.Error("bus thrash with 2 addresses accepted")
	}
	if _, err := CheckerboardFill(0, 0, cond); err == nil {
		t.Error("empty checkerboard accepted")
	}
}
