package testgen

import "math"

// FNV-1a 64-bit constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint32(h uint64, v uint32) uint64 {
	h = fnvByte(h, byte(v))
	h = fnvByte(h, byte(v>>8))
	h = fnvByte(h, byte(v>>16))
	return fnvByte(h, byte(v>>24))
}

func fnvUint64(h uint64, v uint64) uint64 {
	h = fnvUint32(h, uint32(v))
	return fnvUint32(h, uint32(v>>32))
}

// Fingerprint hashes the sequence structure with FNV-1a.
func (s Sequence) Fingerprint() uint64 {
	h := fnvUint64(fnvOffset, uint64(len(s)))
	for _, v := range s {
		h = fnvByte(h, byte(v.Op))
		h = fnvUint32(h, v.Addr)
		h = fnvUint32(h, v.Data)
	}
	return h
}

// Fingerprint hashes the exact condition triple (bit-level, via
// math.Float64bits) with FNV-1a.
func (c Conditions) Fingerprint() uint64 {
	h := fnvUint64(fnvOffset, math.Float64bits(c.VddV))
	h = fnvUint64(h, math.Float64bits(c.TempC))
	return fnvUint64(h, math.Float64bits(c.ClockMHz))
}

// Fingerprint returns a 64-bit structural hash of the test: every vector of
// the sequence plus the exact condition triple. The Name is deliberately
// excluded — two tests with identical vectors and conditions measure the
// same physics no matter what the generator called them — which is what
// makes the fingerprint usable as a measurement memo-cache key. Callers
// caching across dies or parameters must scope the cache (or mix die and
// parameter into the key) themselves.
func (t Test) Fingerprint() uint64 {
	h := t.Seq.Fingerprint()
	return h*fnvPrime ^ t.Cond.Fingerprint()
}
