package testgen

import (
	"fmt"
	"strings"
)

// March notation parser. Memory-test literature writes March algorithms in
// the element notation the paper's references use, e.g. March C- as
//
//	{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}
//
// ParseMarch accepts that notation (and the ASCII fallbacks "u"/"d"/"a"
// for ⇑/⇓/⇕) so test engineers can define algorithms in configuration
// rather than code:
//
//	ParseMarch("March C-", "a(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); a(r0)")

// ParseMarch parses a March algorithm from element notation. Braces are
// optional; elements separate with ';'.
func ParseMarch(name, notation string) (MarchAlgorithm, error) {
	alg := MarchAlgorithm{Name: name}
	s := strings.TrimSpace(notation)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	if strings.TrimSpace(s) == "" {
		return alg, fmt.Errorf("testgen: empty march notation")
	}
	for i, elem := range strings.Split(s, ";") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			continue
		}
		e, err := parseMarchElement(elem)
		if err != nil {
			return alg, fmt.Errorf("testgen: march element %d %q: %w", i, elem, err)
		}
		alg.Elements = append(alg.Elements, e)
	}
	if len(alg.Elements) == 0 {
		return alg, fmt.Errorf("testgen: march notation has no elements")
	}
	return alg, nil
}

func parseMarchElement(s string) (MarchElement, error) {
	var e MarchElement
	// Address order marker.
	switch {
	case strings.HasPrefix(s, "⇑"), strings.HasPrefix(s, "u"), strings.HasPrefix(s, "U"):
		e.Order = OrderUp
		s = trimOrderMarker(s, "⇑", "u", "U")
	case strings.HasPrefix(s, "⇓"), strings.HasPrefix(s, "d"), strings.HasPrefix(s, "D"):
		e.Order = OrderDown
		s = trimOrderMarker(s, "⇓", "d", "D")
	case strings.HasPrefix(s, "⇕"), strings.HasPrefix(s, "a"), strings.HasPrefix(s, "A"):
		e.Order = OrderAny
		s = trimOrderMarker(s, "⇕", "a", "A")
	default:
		return e, fmt.Errorf("missing address-order marker (⇑/⇓/⇕ or u/d/a)")
	}
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return e, fmt.Errorf("operations must be parenthesized")
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return e, fmt.Errorf("empty operation list")
	}
	for _, opStr := range strings.Split(inner, ",") {
		opStr = strings.TrimSpace(strings.ToLower(opStr))
		var op MarchOp
		switch opStr {
		case "r0":
			op = MarchOp{Write: false, Background: true}
		case "r1":
			op = MarchOp{Write: false, Background: false}
		case "w0":
			op = MarchOp{Write: true, Background: true}
		case "w1":
			op = MarchOp{Write: true, Background: false}
		default:
			return e, fmt.Errorf("unknown operation %q (want r0, r1, w0 or w1)", opStr)
		}
		e.Ops = append(e.Ops, op)
	}
	return e, nil
}

func trimOrderMarker(s string, markers ...string) string {
	for _, m := range markers {
		if strings.HasPrefix(s, m) {
			return s[len(m):]
		}
	}
	return s
}

// FormatMarch renders an algorithm back to ASCII element notation
// (round-trips with ParseMarch).
func FormatMarch(a MarchAlgorithm) string {
	var parts []string
	for _, e := range a.Elements {
		marker := "a"
		switch e.Order {
		case OrderUp:
			marker = "u"
		case OrderDown:
			marker = "d"
		}
		var ops []string
		for _, op := range e.Ops {
			s := "r"
			if op.Write {
				s = "w"
			}
			if op.Background {
				s += "0"
			} else {
				s += "1"
			}
			ops = append(ops, s)
		}
		parts = append(parts, marker+"("+strings.Join(ops, ",")+")")
	}
	return strings.Join(parts, "; ")
}

// Well-known algorithms beyond the built-in constructors, in notation form.
// MarchFromLibrary instantiates one by name.
var marchLibrary = map[string]string{
	"MATS":     "a(w0); a(r0,w1); a(r1)",
	"MATS+":    "a(w0); u(r0,w1); d(r1,w0)",
	"MATS++":   "a(w0); u(r0,w1); d(r1,w0,r0)",
	"March X":  "a(w0); u(r0,w1); d(r1,w0); a(r0)",
	"March Y":  "a(w0); u(r0,w1,r1); d(r1,w0,r0); a(r0)",
	"March C-": "a(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); a(r0)",
	"March A":  "a(w0); u(r0,w1,w0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0)",
	"March B":  "a(w0); u(r0,w1,r1,w0,r0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0)",
	"March SS": "a(w0); u(r0,r0,w0,r0,w1); u(r1,r1,w1,r1,w0); d(r0,r0,w0,r0,w1); d(r1,r1,w1,r1,w0); a(r0)",
	"March LR": "a(w0); d(r0,w1); u(r1,w0,r0,w1); u(r1,w0); u(r0,w1,r1,w0); a(r0)",
}

// MarchLibraryNames lists the algorithms available from MarchFromLibrary,
// sorted by complexity is not guaranteed; the order is unspecified.
func MarchLibraryNames() []string {
	names := make([]string, 0, len(marchLibrary))
	for n := range marchLibrary {
		names = append(names, n)
	}
	return names
}

// MarchFromLibrary instantiates a well-known March algorithm by name.
func MarchFromLibrary(name string) (MarchAlgorithm, error) {
	notation, ok := marchLibrary[name]
	if !ok {
		return MarchAlgorithm{}, fmt.Errorf("testgen: unknown march algorithm %q", name)
	}
	return ParseMarch(name, notation)
}
