package testgen

import "fmt"

// Directed stress patterns — the classic test-floor generators that sit
// between the deterministic March suites and the fully random generator.
// The paper's premise is that none of these pre-defined stimuli is
// guaranteed to provoke the worst case, but they are the baselines a
// characterization engineer runs first, and the multiple-trip-point
// concept measures one trip point per each of them.

// WalkingOnesAddr walks a single set address bit across the address bus
// (1, 2, 4, …), alternating a write and a read per step — the classic
// address-bus fault pattern. cycles bounds the sequence length.
func WalkingOnesAddr(addrSpace uint32, cycles int, cond Conditions) (Test, error) {
	if addrSpace < 2 {
		return Test{}, fmt.Errorf("testgen: walking ones needs at least 2 addresses")
	}
	if cycles < 2 {
		return Test{}, fmt.Errorf("testgen: walking ones needs at least 2 cycles")
	}
	seq := make(Sequence, 0, cycles)
	bit := uint32(1)
	for len(seq) < cycles {
		addr := bit % addrSpace
		seq = append(seq, Vector{Op: OpWrite, Addr: addr, Data: 0xAAAAAAAA})
		if len(seq) < cycles {
			seq = append(seq, Vector{Op: OpRead, Addr: addr})
		}
		bit <<= 1
		if bit == 0 || bit >= addrSpace {
			bit = 1
		}
	}
	return Test{Name: "WALK1-ADDR", Seq: seq, Cond: cond}, nil
}

// AddressComplement is the butterfly pattern: accesses ping between
// address k and its complement (addrSpace−1−k) with complementary data,
// maximizing simultaneous address-bus switching.
func AddressComplement(addrSpace uint32, cycles int, cond Conditions) (Test, error) {
	if addrSpace < 2 || cycles < 2 {
		return Test{}, fmt.Errorf("testgen: butterfly needs ≥2 addresses and cycles")
	}
	seq := make(Sequence, 0, cycles)
	k := uint32(0)
	for len(seq) < cycles {
		comp := addrSpace - 1 - k
		seq = append(seq, Vector{Op: OpWrite, Addr: k, Data: 0x00000000})
		if len(seq) < cycles {
			seq = append(seq, Vector{Op: OpWrite, Addr: comp, Data: 0xFFFFFFFF})
		}
		k = (k + 1) % (addrSpace / 2)
	}
	return Test{Name: "BUTTERFLY", Seq: seq, Cond: cond}, nil
}

// RowHammer activates one aggressor row as fast as possible (alternating
// two columns so every cycle is a fresh access), the disturb pattern
// neighbouring rows are most sensitive to. rowBase is any address in the
// aggressor row; rowWidth the number of words per row.
func RowHammer(rowBase uint32, rowWidth uint32, cycles int, cond Conditions) (Test, error) {
	if rowWidth < 2 {
		return Test{}, fmt.Errorf("testgen: row hammer needs a row of at least 2 words")
	}
	if cycles < 2 {
		return Test{}, fmt.Errorf("testgen: row hammer needs at least 2 cycles")
	}
	base := rowBase - rowBase%rowWidth
	seq := make(Sequence, 0, cycles)
	for i := 0; len(seq) < cycles; i++ {
		addr := base + uint32(i%2)
		seq = append(seq, Vector{Op: OpRead, Addr: addr})
	}
	return Test{Name: fmt.Sprintf("ROWHAMMER@%d", base), Seq: seq, Cond: cond}, nil
}

// BusThrash is the bitline-coupling motif: adjacent-column writes with
// complementary data, alternating between two far-apart base rows — the
// shape of the worst case the device model's ridge responds to. It is
// included as a *directed baseline*: an engineer who already suspects
// coupling would run it, but without the CI flow there is no reason to.
func BusThrash(addrSpace uint32, cycles int, cond Conditions) (Test, error) {
	if addrSpace < 4 || cycles < 4 {
		return Test{}, fmt.Errorf("testgen: bus thrash needs ≥4 addresses and cycles")
	}
	seq := make(Sequence, 0, cycles)
	for i := 0; len(seq) < cycles; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = addrSpace - 2
		}
		seq = append(seq, Vector{Op: OpWrite, Addr: base, Data: 0x00000000})
		if len(seq) < cycles {
			seq = append(seq, Vector{Op: OpWrite, Addr: base + 1, Data: 0xFFFFFFFF})
		}
	}
	return Test{Name: "BUSTHRASH", Seq: seq, Cond: cond}, nil
}

// CheckerboardFill writes a checkerboard background over a window and
// reads it back — the DC retention-style baseline with low bus activity.
func CheckerboardFill(base, words uint32, cond Conditions) (Test, error) {
	if words < 1 {
		return Test{}, fmt.Errorf("testgen: checkerboard needs at least one word")
	}
	seq := make(Sequence, 0, 2*words)
	for i := uint32(0); i < words; i++ {
		d := uint32(0x55555555)
		if i%2 == 1 {
			d = 0xAAAAAAAA
		}
		seq = append(seq, Vector{Op: OpWrite, Addr: base + i, Data: d})
	}
	for i := uint32(0); i < words; i++ {
		seq = append(seq, Vector{Op: OpRead, Addr: base + i})
	}
	return Test{Name: "CHECKERBOARD", Seq: seq, Cond: cond}, nil
}

// DirectedSuite returns the full directed baseline set over the given
// address space, each pattern sized into the paper's short-sequence regime.
func DirectedSuite(addrSpace uint32, rowWidth uint32, cond Conditions) ([]Test, error) {
	cycles := MaxSequenceLen / 2
	var out []Test
	mk := func(t Test, err error) error {
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	if err := mk(WalkingOnesAddr(addrSpace, cycles, cond)); err != nil {
		return nil, err
	}
	if err := mk(AddressComplement(addrSpace, cycles, cond)); err != nil {
		return nil, err
	}
	if err := mk(RowHammer(0, rowWidth, cycles, cond)); err != nil {
		return nil, err
	}
	if err := mk(BusThrash(addrSpace, cycles, cond)); err != nil {
		return nil, err
	}
	if err := mk(CheckerboardFill(0, 250, cond)); err != nil {
		return nil, err
	}
	return out, nil
}
