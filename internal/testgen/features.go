package testgen

import "math/bits"

// Feature indices of the vector produced by ExtractFeatures. The neural
// network's input layer is wired to this encoding; keep the order stable, it
// is part of the weight-file format.
const (
	FeatATDMean      = iota // mean address-transition density
	FeatATDPeak             // peak address-transition density (windowed)
	FeatToggleMean          // mean data-bus toggle density
	FeatTogglePeak          // peak data-bus toggle density (windowed)
	FeatReadRatio           // fraction of reads
	FeatWriteRatio          // fraction of writes
	FeatBurstiness          // sequential-address run fraction
	FeatPingPong            // long-distance alternation score
	FeatLocality            // address locality (low mean stride)
	FeatCheckerboard        // data background checkerboard affinity
	FeatStripes             // data background stripe affinity
	FeatOnesDensity         // mean ones density of written data
	FeatInvertRate          // rate of full-bus data inversions
	FeatSSNProxy            // simultaneous-switching-noise proxy
	FeatCoupling            // adjacent-address complementary-write coupling
	FeatVdd                 // normalized supply voltage
	FeatTemp                // normalized temperature
	FeatClock               // normalized clock
	FeatSeqLen              // normalized sequence length
	NumFeatures             // length of the feature vector
)

// FeatureNames returns human-readable names aligned with the feature
// indices, for reports and debugging.
func FeatureNames() []string {
	return []string{
		"atd_mean", "atd_peak", "toggle_mean", "toggle_peak",
		"read_ratio", "write_ratio", "burstiness", "ping_pong",
		"locality", "checkerboard", "stripes", "ones_density",
		"invert_rate", "ssn_proxy", "coupling", "vdd", "temp", "clock", "seq_len",
	}
}

// featureWindow is the sliding-window length used for peak activity
// statistics; it mirrors the supply network's droop integration window in
// the DUT physics model.
const featureWindow = 8

// featureRing is the fixed-size sliding window behind the peak statistics.
// mean sums oldest-to-newest — the same order the slice-based window
// summed in — so the extracted features are bit-identical to that form
// while the window itself never allocates.
type featureRing struct {
	buf     [featureWindow]float64
	head, n int
}

func (r *featureRing) push(v float64) {
	if r.n < featureWindow {
		r.buf[(r.head+r.n)%featureWindow] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % featureWindow
}

func (r *featureRing) mean() float64 {
	s := 0.0
	for j := 0; j < r.n; j++ {
		s += r.buf[(r.head+j)%featureWindow]
	}
	return s / float64(r.n)
}

// ExtractFeatures encodes a test as a fixed-length vector of values in
// [0, 1], the input representation the paper's neural networks learn from.
// The encoding is a static approximation of the activity the device will
// see; the DUT model computes the authoritative activity by executing the
// sequence, so the NN remains a "sub-optimal" predictor exactly as the paper
// describes.
func ExtractFeatures(t Test, limits ConditionLimits) []float64 {
	f := make([]float64, NumFeatures)
	seq := t.Seq
	if len(seq) == 0 {
		return f
	}

	// Address-transition densities are normalized per significant address
	// bit (inferred from the widest address used), matching the device
	// model's normalization: a full-complement address swing must read as
	// density 1 regardless of array size.
	var maxAddr uint32
	for _, v := range seq {
		if v.Op != OpNop && v.Addr > maxAddr {
			maxAddr = v.Addr
		}
	}
	addrBits := float64(bits.Len32(maxAddr))
	if addrBits < 4 {
		addrBits = 4
	}

	var (
		atdSum, togSum       float64
		atdWin, togWin       float64
		atdPeak, togPeak     float64
		seqRuns, pingHits    int
		strideSum            float64
		checker, stripes     int
		onesSum              float64
		inverts              int
		writes, reads        int
		ssnSum               float64
		winATD, winTog       featureRing
		prevAddr, prevData   uint32
		prevWriteData        uint32
		prevWriteAddr        uint32
		couplingEvents       int
		havePrev, haveWrite  bool
		lastStride, prevStep int64
	)

	for i, v := range seq {
		switch v.Op {
		case OpRead:
			reads++
		case OpWrite:
			writes++
		}

		atd := 0.0
		if havePrev {
			atd = float64(bits.OnesCount32(prevAddr^v.Addr)) / addrBits
			if atd > 1 {
				atd = 1
			}
			step := int64(v.Addr) - int64(prevAddr)
			if step == 1 {
				seqRuns++
			}
			if step != 0 {
				s := step
				if s < 0 {
					s = -s
				}
				strideSum += float64(s)
			}
			if prevStep != 0 && step == -prevStep && step != 0 {
				pingHits++
			}
			prevStep = step
			_ = lastStride
		}
		atdSum += atd
		winATD.push(atd)
		atdWin = winATD.mean()
		if atdWin > atdPeak {
			atdPeak = atdWin
		}

		tog := 0.0
		if v.Op == OpWrite {
			if haveWrite {
				flips := bits.OnesCount32(prevWriteData ^ v.Data)
				tog = float64(flips) / 32.0
				if prevWriteData^v.Data == 0xFFFFFFFF {
					inverts++
				}
				dAddr := int64(v.Addr) - int64(prevWriteAddr)
				if dAddr < 0 {
					dAddr = -dAddr
				}
				if flips >= 24 && dAddr >= 1 && dAddr <= 2 {
					couplingEvents++
				}
			}
			prevWriteAddr = v.Addr
			prevWriteData = v.Data
			haveWrite = true
			onesSum += float64(bits.OnesCount32(v.Data)) / 32.0
			switch v.Data {
			case 0x55555555, 0xAAAAAAAA:
				checker++
			case 0x0F0F0F0F, 0xF0F0F0F0, 0x00FF00FF, 0xFF00FF00:
				stripes++
			}
		} else if havePrev {
			// Reads toggle the output bus with whatever was stored; use the
			// address as a cheap proxy for the returned word's correlation.
			tog = float64(bits.OnesCount32(prevData^v.Addr)) / 32.0 * 0.5
		}
		togSum += tog
		winTog.push(tog)
		togWin = winTog.mean()
		if togWin > togPeak {
			togPeak = togWin
		}

		// SSN proxy: simultaneous high address and data activity.
		ssnSum += atd * tog

		prevAddr = v.Addr
		prevData = v.Data
		havePrev = true
		_ = i
	}

	n := float64(len(seq))
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0
		}
		return clamp01((v - lo) / (hi - lo))
	}

	f[FeatATDMean] = clamp01(atdSum / n)
	f[FeatATDPeak] = clamp01(atdPeak)
	f[FeatToggleMean] = clamp01(togSum / n)
	f[FeatTogglePeak] = clamp01(togPeak)
	f[FeatReadRatio] = float64(reads) / n
	f[FeatWriteRatio] = float64(writes) / n
	f[FeatBurstiness] = float64(seqRuns) / n
	f[FeatPingPong] = clamp01(float64(pingHits) / n * 2)
	meanStride := strideSum / n
	f[FeatLocality] = clamp01(1.0 / (1.0 + meanStride/16.0))
	if writes > 0 {
		f[FeatCheckerboard] = float64(checker) / float64(writes)
		f[FeatStripes] = float64(stripes) / float64(writes)
		f[FeatOnesDensity] = onesSum / float64(writes)
		f[FeatInvertRate] = clamp01(float64(inverts) / float64(writes) * 2)
	}
	f[FeatSSNProxy] = clamp01(ssnSum / n * 4)
	f[FeatCoupling] = clamp01(float64(couplingEvents) / n * 4)
	f[FeatVdd] = norm(t.Cond.VddV, limits.VddMin, limits.VddMax)
	f[FeatTemp] = norm(t.Cond.TempC, limits.TempMin, limits.TempMax)
	f[FeatClock] = norm(t.Cond.ClockMHz, limits.ClockMin, limits.ClockMax)
	f[FeatSeqLen] = norm(float64(len(seq)), MinSequenceLen, MaxSequenceLen)
	return f
}
