package testgen

import "fmt"

// March tests are the classic deterministic memory test algorithms used as
// the "Deterministic" baseline in Table 1. A March test is a sequence of
// March elements; each element walks the address range in a fixed order
// (up, down, or either) applying a fixed list of read/write operations with
// a data background and its complement.

// MarchOrder is the address order of a March element.
type MarchOrder uint8

const (
	// OrderUp walks addresses ascending.
	OrderUp MarchOrder = iota
	// OrderDown walks addresses descending.
	OrderDown
	// OrderAny walks ascending by convention (the algorithm permits either).
	OrderAny
)

// MarchOp is one operation inside a March element: read or write of the
// background (true) or its complement (false).
type MarchOp struct {
	Write      bool
	Background bool // true = background data, false = complement
}

// MarchElement is one "⇕(op, op, …)" term of a March algorithm.
type MarchElement struct {
	Order MarchOrder
	Ops   []MarchOp
}

// MarchAlgorithm is a named list of March elements.
type MarchAlgorithm struct {
	Name     string
	Elements []MarchElement
}

// Complexity returns the conventional complexity multiplier k of a k·N March
// algorithm (total operations per address).
func (a MarchAlgorithm) Complexity() int {
	k := 0
	for _, e := range a.Elements {
		k += len(e.Ops)
	}
	return k
}

// MarchCMinus returns the 10N March C- algorithm:
//
//	⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
func MarchCMinus() MarchAlgorithm {
	w0 := MarchOp{Write: true, Background: true}
	w1 := MarchOp{Write: true, Background: false}
	r0 := MarchOp{Write: false, Background: true}
	r1 := MarchOp{Write: false, Background: false}
	return MarchAlgorithm{
		Name: "March C-",
		Elements: []MarchElement{
			{OrderAny, []MarchOp{w0}},
			{OrderUp, []MarchOp{r0, w1}},
			{OrderUp, []MarchOp{r1, w0}},
			{OrderDown, []MarchOp{r0, w1}},
			{OrderDown, []MarchOp{r1, w0}},
			{OrderAny, []MarchOp{r0}},
		},
	}
}

// MarchB returns the 17N March B algorithm:
//
//	⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)
func MarchB() MarchAlgorithm {
	w0 := MarchOp{Write: true, Background: true}
	w1 := MarchOp{Write: true, Background: false}
	r0 := MarchOp{Write: false, Background: true}
	r1 := MarchOp{Write: false, Background: false}
	return MarchAlgorithm{
		Name: "March B",
		Elements: []MarchElement{
			{OrderAny, []MarchOp{w0}},
			{OrderUp, []MarchOp{r0, w1, r1, w0, r0, w1}},
			{OrderUp, []MarchOp{r1, w0, w1}},
			{OrderDown, []MarchOp{r1, w0, w1, w0}},
			{OrderDown, []MarchOp{r0, w1, w0}},
		},
	}
}

// MATSPlus returns the 5N MATS+ algorithm:
//
//	⇕(w0); ⇑(r0,w1); ⇓(r1,w0)
func MATSPlus() MarchAlgorithm {
	w0 := MarchOp{Write: true, Background: true}
	w1 := MarchOp{Write: true, Background: false}
	r0 := MarchOp{Write: false, Background: true}
	r1 := MarchOp{Write: false, Background: false}
	return MarchAlgorithm{
		Name: "MATS+",
		Elements: []MarchElement{
			{OrderAny, []MarchOp{w0}},
			{OrderUp, []MarchOp{r0, w1}},
			{OrderDown, []MarchOp{r1, w0}},
		},
	}
}

// MarchTest expands a March algorithm over the address window
// [base, base+words) with the given data background into a runnable Test
// under the supplied conditions. The window keeps the expansion inside the
// paper's short-sequence regime (a full-array March would be far longer than
// 1000 vectors).
func MarchTest(a MarchAlgorithm, base, words uint32, background uint32, cond Conditions) (Test, error) {
	if words == 0 {
		return Test{}, fmt.Errorf("testgen: march window must contain at least one word")
	}
	seq := make(Sequence, 0, int(words)*a.Complexity())
	for _, e := range a.Elements {
		for i := uint32(0); i < words; i++ {
			addr := base + i
			if e.Order == OrderDown {
				addr = base + words - 1 - i
			}
			for _, op := range e.Ops {
				data := background
				if !op.Background {
					data = ^background
				}
				v := Vector{Addr: addr}
				if op.Write {
					v.Op = OpWrite
					v.Data = data
				} else {
					v.Op = OpRead
				}
				seq = append(seq, v)
			}
		}
	}
	return Test{
		Name: fmt.Sprintf("%s[%d..%d]", a.Name, base, base+words-1),
		Seq:  seq,
		Cond: cond,
	}, nil
}

// StandardBackgrounds are the data backgrounds conventionally paired with
// March algorithms: solid, checkerboard, row stripes and column stripes.
func StandardBackgrounds() []uint32 {
	return []uint32{0x00000000, 0x55555555, 0x0F0F0F0F, 0x00FF00FF}
}

// MarchSuite expands one algorithm over every standard background, producing
// the deterministic production-style suite the paper's single-trip-point
// flow would run.
func MarchSuite(a MarchAlgorithm, base, words uint32, cond Conditions) ([]Test, error) {
	bgs := StandardBackgrounds()
	out := make([]Test, 0, len(bgs))
	for _, bg := range bgs {
		t, err := MarchTest(a, base, words, bg, cond)
		if err != nil {
			return nil, err
		}
		t.Name = fmt.Sprintf("%s bg=%08X", t.Name, bg)
		out = append(out, t)
	}
	return out, nil
}
