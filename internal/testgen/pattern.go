// Package testgen defines the representation of characterization tests —
// vector sequences plus environmental test conditions — and provides the
// generators the paper's flow consumes: a seeded random test generator
// (100–1000 vector cycles per test, §3), deterministic March pattern
// generators used as the "Deterministic" baseline of Table 1, and the
// feature extraction that encodes a test for the neural network.
package testgen

import (
	"errors"
	"fmt"
	"strings"
)

// OpKind identifies a single bus operation in a test sequence.
type OpKind uint8

const (
	// OpNop holds the bus idle for one cycle.
	OpNop OpKind = iota
	// OpWrite drives Addr and Data and stores Data at Addr.
	OpWrite
	// OpRead drives Addr and samples the data output bus.
	OpRead
)

// String returns the conventional mnemonic for the operation.
func (k OpKind) String() string {
	switch k {
	case OpNop:
		return "NOP"
	case OpWrite:
		return "W"
	case OpRead:
		return "R"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Vector is one bus cycle applied to the device under test.
type Vector struct {
	Op   OpKind
	Addr uint32
	Data uint32
}

// String renders the vector as "W @0004=DEADBEEF" style text.
func (v Vector) String() string {
	switch v.Op {
	case OpWrite:
		return fmt.Sprintf("W @%04X=%08X", v.Addr, v.Data)
	case OpRead:
		return fmt.Sprintf("R @%04X", v.Addr)
	default:
		return "NOP"
	}
}

// Sequence is an ordered list of bus cycles. The paper pin-points worst-case
// behaviour with short sequences of 100–1000 vectors per characterization
// measurement.
type Sequence []Vector

// MinSequenceLen and MaxSequenceLen bound the random sequences the paper
// uses per trip-point measurement ("we define small test sequences in
// between 100 to 1000 vector cycles", §3).
const (
	MinSequenceLen = 100
	MaxSequenceLen = 1000
)

// Reads returns the number of read operations in the sequence.
func (s Sequence) Reads() int {
	n := 0
	for _, v := range s {
		if v.Op == OpRead {
			n++
		}
	}
	return n
}

// Writes returns the number of write operations in the sequence.
func (s Sequence) Writes() int {
	n := 0
	for _, v := range s {
		if v.Op == OpWrite {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// Validate checks every vector's address against the given address space
// size and reports the first violation.
func (s Sequence) Validate(addrSpace uint32) error {
	if len(s) == 0 {
		return errors.New("testgen: empty sequence")
	}
	for i, v := range s {
		if v.Op != OpNop && v.Addr >= addrSpace {
			return fmt.Errorf("testgen: vector %d: address %#x outside address space %#x", i, v.Addr, addrSpace)
		}
		if v.Op > OpRead {
			return fmt.Errorf("testgen: vector %d: unknown op %d", i, v.Op)
		}
	}
	return nil
}

// Conditions are the environmental test conditions applied together with a
// sequence: supply voltage, junction temperature and bus clock. The paper's
// GA evolves these as a second chromosome type alongside the sequence.
type Conditions struct {
	VddV     float64 // supply voltage in volts
	TempC    float64 // junction temperature in degrees Celsius
	ClockMHz float64 // bus clock in MHz
}

// NominalConditions are the Table 1 reference conditions (Vdd 1.8 V).
func NominalConditions() Conditions {
	return Conditions{VddV: 1.8, TempC: 25, ClockMHz: 100}
}

// ConditionLimits bound the admissible test conditions; generators and GA
// mutation clamp into these limits.
type ConditionLimits struct {
	VddMin, VddMax     float64
	TempMin, TempMax   float64
	ClockMin, ClockMax float64
}

// DefaultConditionLimits returns the characterization window used throughout
// the experiments: Vdd 1.4–2.2 V (the fig. 8 shmoo Y range), −40–125 °C,
// 50–133 MHz.
func DefaultConditionLimits() ConditionLimits {
	return ConditionLimits{
		VddMin: 1.4, VddMax: 2.2,
		TempMin: -40, TempMax: 125,
		ClockMin: 50, ClockMax: 133,
	}
}

// Clamp forces c into the limits and returns the result.
func (l ConditionLimits) Clamp(c Conditions) Conditions {
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	return Conditions{
		VddV:     clamp(c.VddV, l.VddMin, l.VddMax),
		TempC:    clamp(c.TempC, l.TempMin, l.TempMax),
		ClockMHz: clamp(c.ClockMHz, l.ClockMin, l.ClockMax),
	}
}

// Contains reports whether c lies inside the limits.
func (l ConditionLimits) Contains(c Conditions) bool {
	return c.VddV >= l.VddMin && c.VddV <= l.VddMax &&
		c.TempC >= l.TempMin && c.TempC <= l.TempMax &&
		c.ClockMHz >= l.ClockMin && c.ClockMHz <= l.ClockMax
}

// Test is a complete characterization test: a named vector sequence plus the
// conditions it runs under. One Test yields one trip point (eq. 1).
type Test struct {
	Name string
	Seq  Sequence
	Cond Conditions
}

// Clone returns a deep copy of the test.
func (t Test) Clone() Test {
	return Test{Name: t.Name, Seq: t.Seq.Clone(), Cond: t.Cond}
}

// String summarizes the test for logs and reports.
func (t Test) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d vectors (%dR/%dW) @ %.2fV %.0f°C %.0fMHz",
		t.Name, len(t.Seq), t.Seq.Reads(), t.Seq.Writes(),
		t.Cond.VddV, t.Cond.TempC, t.Cond.ClockMHz)
	return b.String()
}
