// Package cachestore persists measurement memo-caches across process
// lifetimes: a content-addressed key/value store whose on-disk form is a
// directory of immutable, CRC-checked, append-only segment files. A fab
// floor re-running a lot (or a characterization flow re-run with the same
// seed) opens the same cache directory and serves the bulk of its
// measurements from disk instead of burning ATE time again.
//
// On-disk format. A segment file is
//
//	header : magic "RPROCST1" (8 bytes) + scope (8 bytes, little-endian)
//	records: key (8 LE) + value length (4 LE) + value bytes + CRC-32 (4 LE)
//
// where the CRC (IEEE) covers the record's key, length and value bytes.
// Records only ever get appended; a segment is written once to a temporary
// file and published with an atomic rename, so readers never observe a
// half-written segment under POSIX rename semantics. Flush writes only the
// entries added since Open (one new segment per flush, numbered after the
// existing ones); loading replays segments in filename order, later
// segments overriding earlier keys.
//
// The scope tags which logical cache a segment belongs to (parameter,
// geometry, seed, flow — whatever the caller folds into the 64-bit value).
// Open skips segments of other scopes, so several flows can share one
// -cache-dir without poisoning each other's keys.
//
// Corruption policy: a segment whose magic, record framing or CRC does not
// check out fails Open with an error naming the file and the byte offset
// of the first bad record. Callers that prefer running cold to failing
// (the CLIs) log the error and proceed without a store.
package cachestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// magic identifies (and versions) the segment format.
const magic = "RPROCST1"

// headerSize is the fixed segment prefix: magic + scope.
const headerSize = 16

// recordOverhead is the fixed per-record framing cost: key + length + CRC.
const recordOverhead = 16

// maxValueLen bounds a single record's value so a corrupt length field
// cannot trigger a multi-gigabyte allocation during load.
const maxValueLen = 1 << 20

// segPattern matches the segment files a store owns.
const segSuffix = ".seg"

// Stats are the store's lifetime counters since Open.
type Stats struct {
	// LoadedEntries is the number of distinct keys loaded from disk
	// (after later-segment overrides).
	LoadedEntries int64
	// LoadedSegments and SkippedSegments count segment files read and
	// segment files ignored because their scope differs.
	LoadedSegments  int64
	SkippedSegments int64
	// Hits and Misses count Get outcomes.
	Hits   int64
	Misses int64
	// FlushedEntries is the number of records written by Flush calls.
	FlushedEntries int64
	// BytesOnDisk is the total size of this scope's segment files, updated
	// at Open and after every Flush.
	BytesOnDisk int64
}

// Store is one open cache directory scoped to a single logical cache. It
// is safe for concurrent use; the deterministic pipelines call it from
// serial program points anyway so counter order stays reproducible.
type Store struct {
	dir   string
	scope uint64

	mu    sync.RWMutex
	m     map[uint64][]byte
	dirty []uint64 // keys added/changed since the last Flush, insertion order
	isDir map[uint64]bool
	stats Stats
	seq   int // next segment sequence number
}

// Open loads every matching-scope segment in dir (creating dir when
// missing) and returns the store. A corrupt segment aborts the open with
// an error naming the file and byte offset; the returned store is nil.
func Open(dir string, scope uint64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cachestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		scope: scope,
		m:     make(map[uint64][]byte),
		isDir: make(map[uint64]bool),
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		if seq, ok := segmentSeq(name); ok && seq >= s.seq {
			s.seq = seq + 1
		}
		loaded, size, err := s.loadSegment(path)
		if err != nil {
			return nil, err
		}
		if loaded {
			s.stats.LoadedSegments++
			s.stats.BytesOnDisk += size
		} else {
			s.stats.SkippedSegments++
		}
	}
	s.stats.LoadedEntries = int64(len(s.m))
	return s, nil
}

// segmentNames lists the store's segment files in lexical (= load) order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cachestore: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// segmentSeq parses the sequence number out of a "seg-%08d-%016x.seg"
// filename; foreign names report !ok and are only loaded, never counted
// toward the next sequence number.
func segmentSeq(name string) (int, bool) {
	var seq int
	var scope uint64
	n, err := fmt.Sscanf(name, "seg-%08d-%016x"+segSuffix, &seq, &scope)
	return seq, err == nil && n == 2
}

// loadSegment reads one segment file into the map. Segments of a different
// scope report loaded == false and are otherwise ignored. Any framing or
// checksum violation returns an error naming the file and the byte offset
// of the offending record.
func (s *Store) loadSegment(path string) (loaded bool, size int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, 0, fmt.Errorf("cachestore: reading segment: %w", err)
	}
	if len(raw) < headerSize || string(raw[:8]) != magic {
		return false, 0, fmt.Errorf("cachestore: %s: corrupt segment at offset 0: bad magic", path)
	}
	if binary.LittleEndian.Uint64(raw[8:16]) != s.scope {
		return false, 0, nil
	}
	off := headerSize
	for off < len(raw) {
		if len(raw)-off < recordOverhead {
			return false, 0, fmt.Errorf("cachestore: %s: corrupt segment at offset %d: truncated record header", path, off)
		}
		key := binary.LittleEndian.Uint64(raw[off : off+8])
		vlen := int(binary.LittleEndian.Uint32(raw[off+8 : off+12]))
		if vlen > maxValueLen {
			return false, 0, fmt.Errorf("cachestore: %s: corrupt segment at offset %d: value length %d exceeds limit", path, off, vlen)
		}
		if len(raw)-off-recordOverhead < vlen {
			return false, 0, fmt.Errorf("cachestore: %s: corrupt segment at offset %d: truncated value", path, off)
		}
		val := raw[off+12 : off+12+vlen]
		want := binary.LittleEndian.Uint32(raw[off+12+vlen : off+16+vlen])
		if got := crc32.ChecksumIEEE(raw[off : off+12+vlen]); got != want {
			return false, 0, fmt.Errorf("cachestore: %s: corrupt segment at offset %d: CRC mismatch (%08x != %08x)", path, off, got, want)
		}
		// Copy out of the read buffer so the whole file can be collected.
		s.m[key] = append([]byte(nil), val...)
		s.isDir[key] = true
		off += recordOverhead + vlen
	}
	return true, int64(len(raw)), nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Scope returns the store's cache scope.
func (s *Store) Scope() uint64 { return s.scope }

// Len returns the number of entries (loaded plus added).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Stats returns a copy of the lifetime counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// BytesOnDisk returns the total size of this scope's segments.
func (s *Store) BytesOnDisk() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats.BytesOnDisk
}

// Get returns the stored value for key, counting a hit or a miss. The
// returned slice is shared: callers must not modify it.
func (s *Store) Get(key uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return v, ok
}

// Put stores value under key. New and changed entries are queued (in Put
// order) for the next Flush; writing a key back with its current on-disk
// value is a no-op. The value is copied.
func (s *Store) Put(key uint64, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok && string(old) == string(value) {
		return
	}
	_, wasDirty := s.m[key]
	s.m[key] = append([]byte(nil), value...)
	if s.isDir[key] || !wasDirty {
		// Either overriding a persisted entry or inserting a new key: both
		// need a record in the next segment. An overwrite of an entry that
		// is already pending keeps its original queue position.
		if s.isDir[key] {
			delete(s.isDir, key)
		}
		s.dirty = append(s.dirty, key)
	}
}

// Range calls fn for every entry until fn returns false, in unspecified
// order. The value slices are shared: do not modify them.
func (s *Store) Range(fn func(key uint64, value []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, v := range s.m {
		if !fn(k, v) {
			return
		}
	}
}

// Flush writes the entries added or changed since the last Flush (in their
// insertion order, so the segment bytes are deterministic for a
// deterministic caller) into one new segment, published with an atomic
// rename. With nothing dirty it writes nothing. Returns the number of
// records written.
func (s *Store) Flush() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.dirty) == 0 {
		return 0, nil
	}
	buf := make([]byte, 0, headerSize+len(s.dirty)*(recordOverhead+16))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint64(buf, s.scope)
	for _, key := range s.dirty {
		val := s.m[key]
		start := len(buf)
		buf = binary.LittleEndian.AppendUint64(buf, key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
		buf = append(buf, val...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	}

	final := filepath.Join(s.dir, fmt.Sprintf("seg-%08d-%016x%s", s.seq, s.scope, segSuffix))
	tmp, err := os.CreateTemp(s.dir, ".tmp-seg-*")
	if err != nil {
		return 0, fmt.Errorf("cachestore: creating segment: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("cachestore: writing segment: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("cachestore: syncing segment: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("cachestore: closing segment: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("cachestore: publishing segment: %w", err)
	}

	n := len(s.dirty)
	for _, key := range s.dirty {
		s.isDir[key] = true
	}
	s.dirty = s.dirty[:0]
	s.seq++
	s.stats.FlushedEntries += int64(n)
	s.stats.BytesOnDisk += int64(len(buf))
	return n, nil
}

// PutFloat64 stores a scalar measurement value (8 bytes, little-endian
// IEEE-754 bits) — the encoding used to persist parallel.MemoCache
// entries.
func (s *Store) PutFloat64(key uint64, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	s.Put(key, b[:])
}

// GetFloat64 returns the scalar value for key; ok is false when the key is
// absent or not 8 bytes wide.
func (s *Store) GetFloat64(key uint64) (float64, bool) {
	raw, ok := s.Get(key)
	if !ok || len(raw) != 8 {
		return 0, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw)), true
}

// RangeFloat64 calls fn for every 8-byte entry, decoded as a float64.
func (s *Store) RangeFloat64(fn func(key uint64, v float64) bool) {
	s.Range(func(key uint64, value []byte) bool {
		if len(value) != 8 {
			return true
		}
		return fn(key, math.Float64frombits(binary.LittleEndian.Uint64(value)))
	})
}
