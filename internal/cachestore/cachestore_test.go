package cachestore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/proptest"
)

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", 1); err == nil {
		t.Fatal("Open(\"\") succeeded, want error")
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	s, err := Open(dir, 42)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.Len() != 0 || s.Stats().LoadedSegments != 0 {
		t.Fatalf("fresh store not empty: len=%d stats=%+v", s.Len(), s.Stats())
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("directory not created: %v", err)
	}
}

func TestBasicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 7)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Put(1, []byte("alpha"))
	s.Put(2, []byte{})
	s.PutFloat64(3, 1.25)
	if n, err := s.Flush(); err != nil || n != 3 {
		t.Fatalf("Flush = %d, %v; want 3, nil", n, err)
	}
	// A second flush with nothing dirty writes nothing.
	if n, err := s.Flush(); err != nil || n != 0 {
		t.Fatalf("empty Flush = %d, %v; want 0, nil", n, err)
	}

	r, err := Open(dir, 7)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, ok := r.Get(1); !ok || string(got) != "alpha" {
		t.Errorf("Get(1) = %q, %v", got, ok)
	}
	if got, ok := r.Get(2); !ok || len(got) != 0 {
		t.Errorf("Get(2) = %q, %v; want empty, true", got, ok)
	}
	if v, ok := r.GetFloat64(3); !ok || v != 1.25 {
		t.Errorf("GetFloat64(3) = %v, %v", v, ok)
	}
	if _, ok := r.Get(99); ok {
		t.Error("Get(99) hit, want miss")
	}
	st := r.Stats()
	if st.LoadedEntries != 3 || st.LoadedSegments != 1 || st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesOnDisk <= 0 {
		t.Errorf("BytesOnDisk = %d, want > 0", st.BytesOnDisk)
	}
}

func TestFlushAppendsSegmentsAndOverrides(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 7)
	s.Put(1, []byte("old"))
	s.Flush()
	s.Put(1, []byte("new"))
	s.Put(2, []byte("two"))
	s.Flush()

	segs, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments = %v, want 2 files", segs)
	}

	r, err := Open(dir, 7)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, _ := r.Get(1); string(got) != "new" {
		t.Errorf("later segment did not override: Get(1) = %q", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	// Rewriting a key with its persisted value queues nothing.
	r.Put(1, []byte("new"))
	if n, err := r.Flush(); err != nil || n != 0 {
		t.Errorf("no-op Put flushed %d records (%v), want 0", n, err)
	}
}

func TestScopeIsolation(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir, 0xAAAA)
	a.Put(1, []byte("scope-a"))
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 0xBBBB)
	if err != nil {
		t.Fatalf("Open scope B alongside scope A segment: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("scope B loaded %d foreign entries", b.Len())
	}
	if st := b.Stats(); st.SkippedSegments != 1 || st.LoadedSegments != 0 {
		t.Errorf("scope B stats = %+v, want 1 skipped segment", st)
	}
	b.Put(1, []byte("scope-b"))
	if _, err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Both scopes coexist in one directory, each seeing only its own value.
	a2, _ := Open(dir, 0xAAAA)
	b2, _ := Open(dir, 0xBBBB)
	if got, _ := a2.Get(1); string(got) != "scope-a" {
		t.Errorf("scope A sees %q", got)
	}
	if got, _ := b2.Get(1); string(got) != "scope-b" {
		t.Errorf("scope B sees %q", got)
	}
}

// Corrupting any single byte of a segment must fail Open with an error
// naming the file and a byte offset (except scope bytes, which change the
// segment's identity and make it skipped instead).
func TestCorruptSegmentRejectedWithOffset(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 7)
	s.Put(0xDEAD, []byte("payload"))
	s.PutFloat64(0xBEEF, 3.5)
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segmentNames(dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	path := filepath.Join(dir, segs[0])
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off < len(orig); off++ {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, 7)
		if off >= 8 && off < 16 {
			// Scope bytes: the segment now belongs to a different scope and
			// is skipped, not rejected.
			if err != nil {
				t.Errorf("offset %d (scope byte): Open failed: %v", off, err)
			} else if st := r.Stats(); st.SkippedSegments != 1 {
				t.Errorf("offset %d (scope byte): stats = %+v, want skip", off, st)
			}
			continue
		}
		if err == nil {
			t.Errorf("offset %d: corruption accepted", off)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, segs[0]) || !strings.Contains(msg, "offset") {
			t.Errorf("offset %d: error %q does not name file and offset", off, msg)
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 7); err != nil {
		t.Fatalf("restored segment rejected: %v", err)
	}
}

func TestTruncatedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 7)
	s.Put(1, []byte("hello"))
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segmentNames(dir)
	path := filepath.Join(dir, segs[0])
	orig, _ := os.ReadFile(path)
	for _, cut := range []int{len(orig) - 1, len(orig) - 5, headerSize + 3, headerSize, 4, 0} {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, 7)
		switch {
		case cut == headerSize:
			// A header with zero records is a legal empty segment.
			if err != nil || r.Len() != 0 {
				t.Errorf("header-only segment: err = %v, len = %d", err, r.Len())
			}
		case cut > headerSize:
			if err == nil || !strings.Contains(err.Error(), "offset") {
				t.Errorf("truncation to %d bytes: err = %v, want offset-naming error", cut, err)
			}
		default:
			if err == nil {
				t.Errorf("truncation to %d bytes accepted", cut)
			}
		}
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "sub.seg"), 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 7)
	if err != nil {
		t.Fatalf("Open with foreign files: %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("loaded %d entries from foreign files", s.Len())
	}
}

// Round-trip closure: any set of entries written through any interleaving
// of Puts and Flushes loads back byte-identical, with later writes
// overriding earlier ones.
func TestRoundTripClosure(t *testing.T) {
	proptest.Check(t, 40, func(pt *proptest.T) {
		dir, err := os.MkdirTemp("", "cachestore-prop-*")
		if err != nil {
			pt.Fatalf("tempdir: %v", err)
		}
		defer os.RemoveAll(dir)

		scope := pt.Uint64()
		s, err := Open(dir, scope)
		if err != nil {
			pt.Fatalf("Open: %v", err)
		}

		keys := make([]uint64, pt.IntRange(1, 12))
		for i := range keys {
			keys[i] = pt.Uint64()
		}
		want := map[uint64][]byte{}
		nOps := pt.IntRange(1, 60)
		flushes := 0
		for i := 0; i < nOps; i++ {
			if pt.Intn(8) == 0 {
				if _, err := s.Flush(); err != nil {
					pt.Fatalf("Flush: %v", err)
				}
				flushes++
				continue
			}
			k := proptest.Pick(pt, keys)
			v := pt.Bytes(24)
			s.Put(k, v)
			want[k] = append([]byte(nil), v...)
		}
		if _, err := s.Flush(); err != nil {
			pt.Fatalf("final Flush: %v", err)
		}
		pt.Logf("%d ops, %d interleaved flushes, %d distinct keys, scope %#x",
			nOps, flushes, len(want), scope)

		r, err := Open(dir, scope)
		if err != nil {
			pt.Fatalf("reopen: %v", err)
		}
		if r.Len() != len(want) {
			pt.Fatalf("reloaded %d entries, want %d", r.Len(), len(want))
		}
		for k, v := range want {
			got, ok := r.Get(k)
			if !ok || !bytes.Equal(got, v) {
				pt.Errorf("key %#x = %x (present %v), want %x", k, got, ok, v)
			}
		}
		if st := r.Stats(); st.LoadedEntries != int64(len(want)) {
			pt.Errorf("LoadedEntries = %d, want %d", st.LoadedEntries, len(want))
		}
	})
}

func TestRangeFloat64(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 7)
	s.PutFloat64(1, 0.5)
	s.PutFloat64(2, -3.25)
	s.Put(3, []byte("not-a-float"))
	got := map[uint64]float64{}
	s.RangeFloat64(func(k uint64, v float64) bool {
		got[k] = v
		return true
	})
	if len(got) != 2 || got[1] != 0.5 || got[2] != -3.25 {
		t.Errorf("RangeFloat64 = %v", got)
	}
	if v, ok := s.GetFloat64(3); ok {
		t.Errorf("GetFloat64 on non-scalar entry = %v, true", v)
	}
}
