package shmoo

import (
	"repro/internal/ate"
	"repro/internal/parallel"
	"repro/internal/testgen"
)

// Fleet sweeps. Same hermetic-task contract as the parallel sweeps — every
// task reseeds its insertion with a seed derived only from the task index,
// so the plot and cost counters are bit-identical to the serial, batch-pool
// and fleet forms — but the fan-out dispatches onto a persistent fleet and
// the per-test merges stream from the in-order delivery while later tests
// are still measuring, instead of waiting for a whole-overlay barrier.

// AddTestsOn is AddTestsParallel on a persistent fleet: one task per test,
// merged into the overlay in test order as each delivery arrives.
func (p *Plot) AddTestsOn(f *parallel.Fleet, a *ate.ATE, tests []testgen.Test, baseSeed int64) error {
	return p.addTestsOn(f, a, tests, baseSeed, func(wk *ate.ATE) PointFunc { return wk.MeasureShmooPoint })
}

// AddFmaxTestsOn is AddFmaxTestsParallel on a persistent fleet.
func (p *Plot) AddFmaxTestsOn(f *parallel.Fleet, a *ate.ATE, tests []testgen.Test, baseSeed int64) error {
	return p.addTestsOn(f, a, tests, baseSeed, func(wk *ate.ATE) PointFunc { return wk.MeasureFmaxShmooPoint })
}

func (p *Plot) addTestsOn(f *parallel.Fleet, a *ate.ATE, tests []testgen.Test, baseSeed int64, point forkPoint) error {
	grids := make([][]bool, len(tests))
	costs := make([]ate.Stats, len(tests))
	return parallel.Stream(f, len(tests), func(int) (*ate.ATE, error) {
		wk, err := a.Fork(baseSeed)
		if err != nil {
			return nil, err
		}
		// Value-identical dense execution scratch: the fleet worker's
		// insertion lives for the whole overlay, so the arrays amortize.
		wk.Device().EnableExecScratch()
		return wk, nil
	}, func(wk *ate.ATE, i int) error {
		wk.Reseed(baseSeed + int64(i))
		cells, err := p.sweepGrid(point(wk), tests[i], 0, p.Y.Steps)
		if err != nil {
			return err
		}
		grids[i] = cells
		costs[i] = wk.Stats()
		return nil
	}, func(i int) error {
		a.AddStats(costs[i])
		p.merge(grids[i])
		grids[i] = nil
		if p.OnTest != nil {
			p.OnTest(p.Tests, costs[i])
		}
		p.Tests++
		return nil
	})
}

// AddTestsWavefront sweeps every test as a wavefront of per-(test,row)
// cells instead of whole-test tasks: task k covers row k%Y.Steps of test
// k/Y.Steps and reseeds with baseSeed + k, so for a single test the plot
// and merged cost counters equal AddTestParallel's (whose row seeds are
// baseSeed + rowIndex) — the row barrier between tests just disappears.
// Like AddTestParallel, every row re-loads the pattern on its insertion, so
// Profiles cost grows with Y.Steps compared to the whole-test sweeps.
func (p *Plot) AddTestsWavefront(f *parallel.Fleet, a *ate.ATE, tests []testgen.Test, baseSeed int64) error {
	ys := p.Y.Steps
	n := len(tests) * ys
	rows := make([][]bool, n)
	costs := make([]ate.Stats, n)
	var total ate.Stats
	return parallel.Stream(f, n, func(int) (*ate.ATE, error) {
		wk, err := a.Fork(baseSeed)
		if err != nil {
			return nil, err
		}
		wk.Device().EnableExecScratch()
		return wk, nil
	}, func(wk *ate.ATE, k int) error {
		ti, yi := k/ys, k%ys
		wk.Reseed(baseSeed + int64(k))
		cells, err := p.sweepGrid(wk.MeasureShmooPoint, tests[ti], yi, yi+1)
		if err != nil {
			return err
		}
		rows[k] = cells
		costs[k] = wk.Stats()
		return nil
	}, func(k int) error {
		yi := k % ys
		a.AddStats(costs[k])
		total.Add(costs[k])
		for xi := 0; xi < p.X.Steps; xi++ {
			if rows[k][yi*p.X.Steps+xi] {
				p.passCount[yi*p.X.Steps+xi]++
			}
		}
		rows[k] = nil
		if yi == ys-1 {
			if p.OnTest != nil {
				p.OnTest(p.Tests, total)
			}
			p.Tests++
			total = ate.Stats{}
		}
		return nil
	})
}
