package shmoo

import (
	"testing"

	"repro/internal/ate"
	"repro/internal/parallel"
	"repro/internal/testgen"
)

// The fleet sweeps are pure scheduling changes: same plot, same merged cost
// counters, same observer sequence as the batch-pool forms, at every fleet
// size — with measurement noise ON so the RNG discipline is actually load-
// bearing.

func TestAddTestsOnMatchesBatchPool(t *testing.T) {
	tester, gen := rig(t)
	tester.NoiseFraction = 0.25
	tests := gen.Batch(6)
	x, y := smallAxes()

	reference := func() (string, int64) {
		p, err := NewPlot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fork, err := tester.Fork(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AddTestsParallel(fork, tests, 900, 4); err != nil {
			t.Fatal(err)
		}
		return p.Render(), fork.Stats().Measurements
	}
	wantGrid, wantCost := reference()

	for _, workers := range []int{1, 2, 8} {
		p, err := NewPlot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fork, err := tester.Fork(1)
		if err != nil {
			t.Fatal(err)
		}
		f := parallel.NewFleet(workers)
		if err := p.AddTestsOn(f, fork, tests, 900); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if got := p.Render(); got != wantGrid {
			t.Errorf("fleet=%d grid differs from batch pool:\n%s\nvs\n%s", workers, got, wantGrid)
		}
		if got := fork.Stats().Measurements; got != wantCost {
			t.Errorf("fleet=%d merged %d measurements, batch pool %d", workers, got, wantCost)
		}
		if p.Tests != len(tests) {
			t.Errorf("fleet=%d Tests = %d, want %d", workers, p.Tests, len(tests))
		}
	}
}

func TestAddTestsOnReusesFleetAcrossOverlays(t *testing.T) {
	tester, gen := rig(t)
	tester.NoiseFraction = 0.25
	tests := gen.Batch(4)
	x, y := smallAxes()

	want, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	refFork, err := tester.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.AddTestsParallel(refFork, tests[:2], 77, 3); err != nil {
		t.Fatal(err)
	}
	if err := want.AddTestsParallel(refFork, tests[2:], 78, 3); err != nil {
		t.Fatal(err)
	}

	got, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	fork, err := tester.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	f := parallel.NewFleet(3)
	defer f.Close()
	// Two overlays on the same fleet: the workers (and their reused
	// insertions) survive the stage boundary.
	if err := got.AddTestsOn(f, fork, tests[:2], 77); err != nil {
		t.Fatal(err)
	}
	if err := got.AddTestsOn(f, fork, tests[2:], 78); err != nil {
		t.Fatal(err)
	}
	if g, w := got.Render(), want.Render(); g != w {
		t.Errorf("persistent-fleet overlay differs:\n%s\nvs\n%s", g, w)
	}
	if g, w := fork.Stats().Measurements, refFork.Stats().Measurements; g != w {
		t.Errorf("persistent-fleet cost %d, batch pool %d", g, w)
	}
}

func TestAddFmaxTestsOnMatchesBatchPool(t *testing.T) {
	tester, gen := rig(t)
	tester.NoiseFraction = 0.25
	tests := gen.Batch(3)
	x := Axis{Label: "F (MHz)", Min: 40, Max: 120, Steps: 9}
	_, y := smallAxes()

	want, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	refFork, err := tester.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.AddFmaxTestsParallel(refFork, tests, 55, 4); err != nil {
		t.Fatal(err)
	}

	got, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	fork, err := tester.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	f := parallel.NewFleet(4)
	defer f.Close()
	if err := got.AddFmaxTestsOn(f, fork, tests, 55); err != nil {
		t.Fatal(err)
	}
	if g, w := got.Render(), want.Render(); g != w {
		t.Errorf("fmax fleet overlay differs:\n%s\nvs\n%s", g, w)
	}
	if g, w := fork.Stats().Measurements, refFork.Stats().Measurements; g != w {
		t.Errorf("fmax fleet cost %d, batch pool %d", g, w)
	}
}

func TestWavefrontSingleTestMatchesRowParallel(t *testing.T) {
	tester, gen := rig(t)
	tester.NoiseFraction = 0.25
	tt := gen.Next()
	x, y := smallAxes()

	want, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	refFork, err := tester.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.AddTestParallel(refFork, tt, 31, 4); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		got, err := NewPlot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fork, err := tester.Fork(1)
		if err != nil {
			t.Fatal(err)
		}
		f := parallel.NewFleet(workers)
		err = got.AddTestsWavefront(f, fork, []testgen.Test{tt}, 31)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if g, w := got.Render(), want.Render(); g != w {
			t.Errorf("fleet=%d wavefront grid differs from row-parallel:\n%s\nvs\n%s", workers, g, w)
		}
		if g, w := fork.Stats().Measurements, refFork.Stats().Measurements; g != w {
			t.Errorf("fleet=%d wavefront cost %d, row-parallel %d", workers, g, w)
		}
		if got.Tests != 1 {
			t.Errorf("fleet=%d Tests = %d after one wavefront test", workers, got.Tests)
		}
	}
}

func TestWavefrontDeterministicAcrossFleetSizes(t *testing.T) {
	tester, gen := rig(t)
	tester.NoiseFraction = 0.25
	tests := gen.Batch(5)
	x, y := smallAxes()

	render := func(workers int) (string, int64, []int) {
		p, err := NewPlot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		var indices []int
		p.OnTest = func(index int, cost ate.Stats) { indices = append(indices, index) }
		fork, err := tester.Fork(1)
		if err != nil {
			t.Fatal(err)
		}
		f := parallel.NewFleet(workers)
		defer f.Close()
		if err := p.AddTestsWavefront(f, fork, tests, 640); err != nil {
			t.Fatal(err)
		}
		if p.Tests != len(tests) {
			t.Fatalf("workers=%d Tests = %d, want %d", workers, p.Tests, len(tests))
		}
		return p.Render(), fork.Stats().Measurements, indices
	}

	grid1, cost1, idx1 := render(1)
	if len(idx1) != len(tests) {
		t.Fatalf("observer fired %d times for %d tests", len(idx1), len(tests))
	}
	for i, idx := range idx1 {
		if idx != i {
			t.Errorf("observation %d has overlay index %d", i, idx)
		}
	}
	for _, workers := range []int{2, 8} {
		grid, cost, idx := render(workers)
		if grid != grid1 {
			t.Errorf("workers=%d wavefront grid differs from workers=1:\n%s\nvs\n%s", workers, grid, grid1)
		}
		if cost != cost1 {
			t.Errorf("workers=%d merged %d measurements, workers=1 merged %d", workers, cost, cost1)
		}
		if len(idx) != len(idx1) {
			t.Errorf("workers=%d observer fired %d times, want %d", workers, len(idx), len(idx1))
		}
	}
}
