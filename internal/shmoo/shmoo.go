// Package shmoo implements the two-dimensional parametric sweep of fig. 8:
// the classic shmoo plot of supply voltage (Y axis) against a timing
// parameter (X axis), with many tests overlaid in a single plot so the
// test-to-test trip-point variation becomes visible, and an ASCII renderer
// in the style of tester logs.
package shmoo

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/ate"
	"repro/internal/testgen"
)

// Axis is one sweep axis.
type Axis struct {
	Label string
	Min   float64
	Max   float64
	Steps int // number of grid points (≥ 2)
}

// Validate reports axis errors.
func (a Axis) Validate() error {
	if a.Steps < 2 {
		return fmt.Errorf("shmoo: axis %q needs at least 2 steps", a.Label)
	}
	if !(a.Min < a.Max) {
		return fmt.Errorf("shmoo: axis %q has empty range [%g, %g]", a.Label, a.Min, a.Max)
	}
	return nil
}

// Value returns the i-th grid value.
func (a Axis) Value(i int) float64 {
	return a.Min + (a.Max-a.Min)*float64(i)/float64(a.Steps-1)
}

// DefaultVddAxis is the fig. 8 Y axis: Vdd 1.4–2.2 V.
func DefaultVddAxis() Axis { return Axis{Label: "VDD (V)", Min: 1.4, Max: 2.2, Steps: 17} }

// DefaultTDQAxis is the fig. 8 X axis: the T_DQ strobe in ns.
func DefaultTDQAxis() Axis { return Axis{Label: "T_DQ (ns)", Min: 18, Max: 36, Steps: 37} }

// DefaultFmaxAxis is the X axis of the classic clock-vs-supply shmoo.
func DefaultFmaxAxis() Axis { return Axis{Label: "clock (MHz)", Min: 80, Max: 135, Steps: 23} }

// Plot is an overlay shmoo: for every grid cell it counts how many of the
// overlaid tests passed there. Cells where some tests pass and some fail
// are exactly the test-dependent trip-point variation the paper
// demonstrates ("there are 1000 tests overlapping in a single shmoo plot").
type Plot struct {
	X, Y  Axis
	Tests int
	// passCount[yi*X.Steps+xi] = number of tests passing at that cell.
	passCount []int

	// OnTest, when non-nil, observes each test merged into the overlay by
	// the parallel sweeps: the test's overlay index (the value of Tests as
	// it merges) and the tester cost its hermetic sweep consumed. It runs
	// on the merge loop, which proceeds in test order regardless of the
	// worker count, so callers may emit trace events from it. The serial
	// AddTestFunc path does not fire it: there one tester carries state
	// across the whole overlay and no per-test cost split exists.
	OnTest func(index int, cost ate.Stats)
}

// NewPlot allocates an empty overlay over the axes.
func NewPlot(x, y Axis) (*Plot, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	if err := y.Validate(); err != nil {
		return nil, err
	}
	return &Plot{X: x, Y: y, passCount: make([]int, x.Steps*y.Steps)}, nil
}

// PointFunc measures one shmoo cell: pass/fail of the test with the supply
// at vdd and the swept X parameter at x.
type PointFunc func(t testgen.Test, vdd, x float64) (bool, error)

// AddTestFunc sweeps one test over the grid using the given point
// measurement and accumulates it into the overlay.
func (p *Plot) AddTestFunc(t testgen.Test, point PointFunc) error {
	for yi := 0; yi < p.Y.Steps; yi++ {
		vdd := p.Y.Value(yi)
		for xi := 0; xi < p.X.Steps; xi++ {
			x := p.X.Value(xi)
			ok, err := point(t, vdd, x)
			if err != nil {
				return fmt.Errorf("shmoo: %s at (%g, %g): %w", t.Name, x, vdd, err)
			}
			if ok {
				p.passCount[yi*p.X.Steps+xi]++
			}
		}
	}
	p.Tests++
	return nil
}

// AddTest sweeps one test over the T_DQ strobe grid on the ATE (the fig. 8
// axes) and accumulates it into the overlay.
func (p *Plot) AddTest(a *ate.ATE, t testgen.Test) error {
	return p.AddTestFunc(t, a.MeasureShmooPoint)
}

// AddFmaxTest sweeps one test over a clock-vs-supply grid — the classic
// frequency shmoo with the same pass-low-X orientation as the T_DQ plot.
func (p *Plot) AddFmaxTest(a *ate.ATE, t testgen.Test) error {
	return p.AddTestFunc(t, a.MeasureFmaxShmooPoint)
}

// PassFraction returns the fraction of overlaid tests passing at cell
// (xi, yi).
func (p *Plot) PassFraction(xi, yi int) float64 {
	if p.Tests == 0 {
		return 0
	}
	return float64(p.passCount[yi*p.X.Steps+xi]) / float64(p.Tests)
}

// BoundarySpread returns, for the given row (Y index), the X positions of
// the all-pass boundary (last cell where every test passes) and the any-
// pass boundary (last cell where at least one test passes). The distance
// between them is the worst-case trip point variation at that supply.
// Orientation: passing region on the low-X side, as for T_DQ strobes. ok is
// false when the row has no passing cell at all.
func (p *Plot) BoundarySpread(yi int) (allPassX, anyPassX float64, ok bool) {
	lastAll, lastAny := -1, -1
	for xi := 0; xi < p.X.Steps; xi++ {
		c := p.passCount[yi*p.X.Steps+xi]
		if c == p.Tests && p.Tests > 0 {
			lastAll = xi
		}
		if c > 0 {
			lastAny = xi
		}
	}
	if lastAny < 0 {
		return 0, 0, false
	}
	if lastAll < 0 {
		lastAll = 0
	}
	return p.X.Value(lastAll), p.X.Value(lastAny), true
}

// WorstCaseVariation returns the maximum boundary spread over all rows —
// the headline number of fig. 8 ("worst case trip point variation").
func (p *Plot) WorstCaseVariation() float64 {
	worst := 0.0
	for yi := 0; yi < p.Y.Steps; yi++ {
		all, any, ok := p.BoundarySpread(yi)
		if !ok {
			continue
		}
		if d := math.Abs(any - all); d > worst {
			worst = d
		}
	}
	return worst
}

// Render draws the overlay as tester-log ASCII art: '*' where every test
// passes, '.' where none does, and digits 1–9 for the partial band (the
// decile of tests passing). Rows print from the maximum Y downward, the
// tester convention.
func (p *Plot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shmoo overlay: %d tests, X=%s, Y=%s\n", p.Tests, p.X.Label, p.Y.Label)
	for yi := p.Y.Steps - 1; yi >= 0; yi-- {
		fmt.Fprintf(&b, "%7.3f |", p.Y.Value(yi))
		for xi := 0; xi < p.X.Steps; xi++ {
			b.WriteByte(p.cellChar(xi, yi))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%7s +%s\n", "", strings.Repeat("-", p.X.Steps))
	fmt.Fprintf(&b, "%8s %-*.3g%*.3g\n", "", p.X.Steps-4, p.X.Min, 4, p.X.Max)
	fmt.Fprintf(&b, "legend: '*' all pass, '.' all fail, 1-9 partial pass decile\n")
	return b.String()
}

func (p *Plot) cellChar(xi, yi int) byte {
	frac := p.PassFraction(xi, yi)
	switch {
	case p.Tests == 0:
		return '?'
	case frac >= 1:
		return '*'
	case frac <= 0:
		return '.'
	default:
		d := int(frac * 10)
		if d < 1 {
			d = 1
		}
		if d > 9 {
			d = 9
		}
		return byte('0' + d)
	}
}

// ExportCSV writes the overlay as CSV: one row per grid cell with the two
// axis values and the pass fraction, loadable by any plotting tool.
func (p *Plot) ExportCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "x,y,pass_fraction,pass_count,tests\n"); err != nil {
		return err
	}
	for yi := 0; yi < p.Y.Steps; yi++ {
		for xi := 0; xi < p.X.Steps; xi++ {
			if _, err := fmt.Fprintf(bw, "%g,%g,%.4f,%d,%d\n",
				p.X.Value(xi), p.Y.Value(yi), p.PassFraction(xi, yi),
				p.passCount[yi*p.X.Steps+xi], p.Tests); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RowTripPoints extracts, for a single-test plot, the trip point (largest
// passing X) per Y row — the fig. 8 pass/fail boundary curve. Rows with no
// passing cell report NaN.
func (p *Plot) RowTripPoints() []float64 {
	out := make([]float64, p.Y.Steps)
	for yi := range out {
		out[yi] = math.NaN()
		for xi := p.X.Steps - 1; xi >= 0; xi-- {
			if p.passCount[yi*p.X.Steps+xi] == p.Tests && p.Tests > 0 {
				out[yi] = p.X.Value(xi)
				break
			}
		}
	}
	return out
}
