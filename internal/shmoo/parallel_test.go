package shmoo

import (
	"testing"

	"repro/internal/ate"
)

func smallAxes() (Axis, Axis) {
	x := Axis{Label: "T_DQ (ns)", Min: 20, Max: 32, Steps: 13}
	y := Axis{Label: "VDD (V)", Min: 1.5, Max: 2.1, Steps: 7}
	return x, y
}

func TestAddTestsParallelDeterministicAcrossWorkers(t *testing.T) {
	tester, gen := rig(t)
	tester.NoiseFraction = 0.25 // noise on: the RNG discipline is the hard part
	tests := gen.Batch(6)
	x, y := smallAxes()

	render := func(workers int) (string, int64) {
		p, err := NewPlot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fork, err := tester.Fork(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AddTestsParallel(fork, tests, 900, workers); err != nil {
			t.Fatal(err)
		}
		return p.Render(), fork.Stats().Measurements
	}

	serial, serialCost := render(1)
	for _, workers := range []int{2, 8} {
		got, cost := render(workers)
		if got != serial {
			t.Errorf("workers=%d grid differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
		if cost != serialCost {
			t.Errorf("workers=%d merged %d measurements, serial %d", workers, cost, serialCost)
		}
	}
}

func TestAddTestParallelDeterministicAcrossWorkers(t *testing.T) {
	tester, gen := rig(t)
	tester.NoiseFraction = 0.25
	tt := gen.Next()
	x, y := smallAxes()

	render := func(workers int) string {
		p, err := NewPlot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fork, err := tester.Fork(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AddTestParallel(fork, tt, 901, workers); err != nil {
			t.Fatal(err)
		}
		if p.Tests != 1 {
			t.Fatalf("Tests = %d after one AddTestParallel", p.Tests)
		}
		return p.Render()
	}

	serial := render(1)
	for _, workers := range []int{3, 8} {
		if got := render(workers); got != serial {
			t.Errorf("workers=%d row-parallel grid differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

func TestParallelOverlayMatchesNoiselessSerial(t *testing.T) {
	// With noise disabled the per-test hermetic semantics cannot differ
	// from the shared-tester serial sweep (thermal off too): the parallel
	// overlay must equal the plain AddTest overlay cell for cell.
	tester, gen := rig(t) // rig sets NoiseFraction = 0, no Heating
	tests := gen.Batch(4)
	x, y := smallAxes()

	serial, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		if err := serial.AddTest(tester, tt); err != nil {
			t.Fatal(err)
		}
	}

	par, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.AddTestsParallel(tester, tests, 902, 4); err != nil {
		t.Fatal(err)
	}
	if got, want := par.Render(), serial.Render(); got != want {
		t.Errorf("parallel overlay differs from serial:\n%s\nvs\n%s", got, want)
	}
}

func TestOnTestObserverFiresInTestOrder(t *testing.T) {
	tester, gen := rig(t)
	tests := gen.Batch(5)
	x, y := smallAxes()
	p, err := NewPlot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	var indices []int
	var total int64
	p.OnTest = func(index int, cost ate.Stats) {
		indices = append(indices, index)
		total += cost.Measurements
	}
	fork, err := tester.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddTestsParallel(fork, tests, 902, 4); err != nil {
		t.Fatal(err)
	}
	if len(indices) != len(tests) {
		t.Fatalf("observer fired %d times for %d tests", len(indices), len(tests))
	}
	for i, idx := range indices {
		if idx != i {
			t.Errorf("observation %d has overlay index %d", i, idx)
		}
	}
	if total != fork.Stats().Measurements {
		t.Errorf("observed cost %d != merged tester cost %d", total, fork.Stats().Measurements)
	}

	// The row-parallel single-test path reports one observation with the
	// whole sweep's cost.
	indices, total = nil, 0
	before := fork.Stats().Measurements
	if err := p.AddTestParallel(fork, tests[0], 903, 4); err != nil {
		t.Fatal(err)
	}
	if len(indices) != 1 || indices[0] != 5 {
		t.Errorf("row-parallel observations = %v, want [5]", indices)
	}
	if total != fork.Stats().Measurements-before {
		t.Errorf("row-parallel observed cost %d != consumed %d", total, fork.Stats().Measurements-before)
	}
}
