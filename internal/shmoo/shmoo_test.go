package shmoo

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
)

func rig(t *testing.T) (*ate.ATE, *testgen.RandomGenerator) {
	t.Helper()
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	tester := ate.New(dev, 5)
	tester.NoiseFraction = 0
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(61, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	return tester, gen
}

func TestAxisValidateAndValue(t *testing.T) {
	if err := (Axis{Label: "x", Min: 0, Max: 1, Steps: 1}).Validate(); err == nil {
		t.Error("single-step axis accepted")
	}
	if err := (Axis{Label: "x", Min: 1, Max: 1, Steps: 5}).Validate(); err == nil {
		t.Error("empty-range axis accepted")
	}
	a := Axis{Label: "x", Min: 10, Max: 20, Steps: 11}
	if a.Value(0) != 10 || a.Value(10) != 20 || a.Value(5) != 15 {
		t.Errorf("axis values: %g, %g, %g", a.Value(0), a.Value(5), a.Value(10))
	}
}

func TestDefaultAxesValid(t *testing.T) {
	if err := DefaultVddAxis().Validate(); err != nil {
		t.Error(err)
	}
	if err := DefaultTDQAxis().Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewPlotRejectsBadAxes(t *testing.T) {
	if _, err := NewPlot(Axis{Steps: 1, Min: 0, Max: 1}, DefaultVddAxis()); err == nil {
		t.Error("bad X accepted")
	}
	if _, err := NewPlot(DefaultTDQAxis(), Axis{Steps: 1, Min: 0, Max: 1}); err == nil {
		t.Error("bad Y accepted")
	}
}

func TestSingleTestShmooStructure(t *testing.T) {
	tester, gen := rig(t)
	p, err := NewPlot(DefaultTDQAxis(), DefaultVddAxis())
	if err != nil {
		t.Fatal(err)
	}
	tt := gen.Next()
	if err := p.AddTest(tester, tt); err != nil {
		t.Fatal(err)
	}
	if p.Tests != 1 {
		t.Fatalf("tests = %d", p.Tests)
	}

	// Each row must be monotone: pass at low strobe, fail at high strobe,
	// with exactly one boundary.
	for yi := 0; yi < p.Y.Steps; yi++ {
		prev := 1.0
		for xi := 0; xi < p.X.Steps; xi++ {
			frac := p.PassFraction(xi, yi)
			if frac > prev {
				t.Fatalf("row %d not monotone at column %d", yi, xi)
			}
			prev = frac
		}
	}

	// The boundary (trip point) must rise with Vdd: higher supply, longer
	// valid window.
	trips := p.RowTripPoints()
	lowRow, highRow := trips[0], trips[p.Y.Steps-1]
	if math.IsNaN(lowRow) || math.IsNaN(highRow) {
		t.Fatal("boundary missing at extreme rows")
	}
	if highRow <= lowRow {
		t.Errorf("trip at max Vdd (%g) not above trip at min Vdd (%g)", highRow, lowRow)
	}
}

func TestOverlayVariationBand(t *testing.T) {
	tester, gen := rig(t)
	p, err := NewPlot(DefaultTDQAxis(), DefaultVddAxis())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := p.AddTest(tester, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if p.Tests != 25 {
		t.Fatalf("tests = %d", p.Tests)
	}
	// The overlay must show a partial band: trip points differ per test.
	if v := p.WorstCaseVariation(); v < 0.5 {
		t.Errorf("worst-case trip variation %g ns too small for 25 distinct tests", v)
	}
	allPass, anyPass, ok := p.BoundarySpread(p.Y.Steps / 2)
	if !ok {
		t.Fatal("mid row has no passing cell")
	}
	if anyPass < allPass {
		t.Errorf("any-pass boundary %g below all-pass boundary %g", anyPass, allPass)
	}
}

func TestRenderContainsLegendAndSymbols(t *testing.T) {
	tester, gen := rig(t)
	p, _ := NewPlot(DefaultTDQAxis(), DefaultVddAxis())
	for i := 0; i < 5; i++ {
		if err := p.AddTest(tester, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	r := p.Render()
	for _, want := range []string{"Shmoo overlay", "*", ".", "legend", "VDD (V)"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q", want)
		}
	}
	lines := strings.Split(r, "\n")
	// One line per Y row plus header/footer.
	if len(lines) < p.Y.Steps+3 {
		t.Errorf("render has %d lines for %d rows", len(lines), p.Y.Steps)
	}
}

func TestPassFractionEmptyPlot(t *testing.T) {
	p, _ := NewPlot(DefaultTDQAxis(), DefaultVddAxis())
	if p.PassFraction(0, 0) != 0 {
		t.Error("empty plot pass fraction nonzero")
	}
	if _, _, ok := p.BoundarySpread(0); ok {
		t.Error("empty plot reported a boundary")
	}
}

func TestShmooMeasurementAccounting(t *testing.T) {
	tester, gen := rig(t)
	x, y := DefaultTDQAxis(), DefaultVddAxis()
	p, _ := NewPlot(x, y)
	before := tester.Stats().Measurements
	if err := p.AddTest(tester, gen.Next()); err != nil {
		t.Fatal(err)
	}
	got := tester.Stats().Measurements - before
	want := int64(x.Steps * y.Steps)
	if got != want {
		t.Errorf("shmoo consumed %d measurements, want %d (grid)", got, want)
	}
}

func TestFmaxShmooStructure(t *testing.T) {
	tester, gen := rig(t)
	p, err := NewPlot(DefaultFmaxAxis(), DefaultVddAxis())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddFmaxTest(tester, gen.Next()); err != nil {
		t.Fatal(err)
	}
	// Pass region at low clock, and Fmax boundary rising with Vdd.
	trips := p.RowTripPoints()
	lo, hi := trips[0], trips[p.Y.Steps-1]
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatal("Fmax boundary missing at extreme supplies")
	}
	if hi <= lo {
		t.Errorf("Fmax at max Vdd (%g) not above Fmax at min Vdd (%g)", hi, lo)
	}
	for yi := 0; yi < p.Y.Steps; yi++ {
		prev := 1.0
		for xi := 0; xi < p.X.Steps; xi++ {
			frac := p.PassFraction(xi, yi)
			if frac > prev {
				t.Fatalf("Fmax row %d not monotone", yi)
			}
			prev = frac
		}
	}
}

func TestAddTestFuncErrorPropagates(t *testing.T) {
	p, _ := NewPlot(DefaultTDQAxis(), DefaultVddAxis())
	errPoint := func(testgen.Test, float64, float64) (bool, error) {
		return false, errSynthetic
	}
	if err := p.AddTestFunc(testgen.Test{Name: "x"}, errPoint); err == nil {
		t.Error("point error swallowed")
	}
	if p.Tests != 0 {
		t.Error("failed sweep counted as a test")
	}
}

var errSynthetic = fmt.Errorf("synthetic point failure")

func TestExportCSV(t *testing.T) {
	tester, gen := rig(t)
	p, _ := NewPlot(Axis{Label: "x", Min: 20, Max: 30, Steps: 3}, Axis{Label: "y", Min: 1.6, Max: 2.0, Steps: 2})
	if err := p.AddTest(tester, gen.Next()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3*2 {
		t.Fatalf("CSV has %d lines, want header + 6 cells", len(lines))
	}
	if lines[0] != "x,y,pass_fraction,pass_count,tests" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "20,1.6,") {
		t.Errorf("first cell %q", lines[1])
	}
}
