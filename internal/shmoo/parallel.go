package shmoo

import (
	"fmt"

	"repro/internal/ate"
	"repro/internal/parallel"
	"repro/internal/testgen"
)

// Parallel sweeps. Every task (a whole test for the overlay fan-out, one
// grid row for the single-test fan-out) runs on a forked tester insertion
// reseeded with baseSeed + taskIndex, collects pass/fail cells into a
// private grid, and the grids merge into the overlay in task order — so the
// plot and the merged cost counters are bit-identical for any worker count.
// Unlike the serial AddTest, where one tester carries noise-RNG and thermal
// state across the whole overlay, each parallel task is hermetic; serial
// (workers = 1) and parallel runs of *these* functions agree exactly.

// forkPoint selects which measurement a parallel sweep performs on the
// forked insertion.
type forkPoint func(wk *ate.ATE) PointFunc

// AddTestsParallel sweeps every test over the T_DQ strobe grid (the fig. 8
// axes) across the given number of workers (below 1 selects one per CPU)
// and accumulates them into the overlay in test order.
func (p *Plot) AddTestsParallel(a *ate.ATE, tests []testgen.Test, baseSeed int64, workers int) error {
	return p.addTestsParallel(a, tests, baseSeed, workers, func(wk *ate.ATE) PointFunc { return wk.MeasureShmooPoint })
}

// AddFmaxTestsParallel sweeps every test over a clock-vs-supply grid across
// workers — the parallel form of AddFmaxTest.
func (p *Plot) AddFmaxTestsParallel(a *ate.ATE, tests []testgen.Test, baseSeed int64, workers int) error {
	return p.addTestsParallel(a, tests, baseSeed, workers, func(wk *ate.ATE) PointFunc { return wk.MeasureFmaxShmooPoint })
}

func (p *Plot) addTestsParallel(a *ate.ATE, tests []testgen.Test, baseSeed int64, workers int, point forkPoint) error {
	grids := make([][]bool, len(tests))
	costs := make([]ate.Stats, len(tests))
	err := parallel.Run(len(tests), workers, func(int) (*ate.ATE, error) {
		return a.Fork(baseSeed)
	}, func(wk *ate.ATE, i int) error {
		wk.Reseed(baseSeed + int64(i))
		cells, err := p.sweepGrid(point(wk), tests[i], 0, p.Y.Steps)
		if err != nil {
			return err
		}
		grids[i] = cells
		costs[i] = wk.Stats()
		return nil
	})
	if err != nil {
		return err
	}
	for i, cells := range grids {
		a.AddStats(costs[i])
		p.merge(cells)
		if p.OnTest != nil {
			p.OnTest(p.Tests, costs[i])
		}
		p.Tests++
	}
	return nil
}

// AddTestParallel sweeps one test over the grid with the rows fanned across
// workers — the low-latency path when a single plot is on the critical
// path. Each row reseeds with baseSeed + rowIndex; note every row re-loads
// the pattern on its insertion, so Profiles cost grows with Y.Steps
// compared to the one load of the serial AddTest.
func (p *Plot) AddTestParallel(a *ate.ATE, t testgen.Test, baseSeed int64, workers int) error {
	rows := make([][]bool, p.Y.Steps)
	costs := make([]ate.Stats, p.Y.Steps)
	err := parallel.Run(p.Y.Steps, workers, func(int) (*ate.ATE, error) {
		return a.Fork(baseSeed)
	}, func(wk *ate.ATE, yi int) error {
		wk.Reseed(baseSeed + int64(yi))
		cells, err := p.sweepGrid(wk.MeasureShmooPoint, t, yi, yi+1)
		if err != nil {
			return err
		}
		rows[yi] = cells
		costs[yi] = wk.Stats()
		return nil
	})
	if err != nil {
		return err
	}
	var total ate.Stats
	for yi, cells := range rows {
		a.AddStats(costs[yi])
		total.Add(costs[yi])
		for xi := 0; xi < p.X.Steps; xi++ {
			if cells[yi*p.X.Steps+xi] {
				p.passCount[yi*p.X.Steps+xi]++
			}
		}
	}
	if p.OnTest != nil {
		p.OnTest(p.Tests, total)
	}
	p.Tests++
	return nil
}

// sweepGrid measures rows [yLo, yHi) of the grid for one test into a
// full-size cell slice.
func (p *Plot) sweepGrid(point PointFunc, t testgen.Test, yLo, yHi int) ([]bool, error) {
	cells := make([]bool, p.X.Steps*p.Y.Steps)
	for yi := yLo; yi < yHi; yi++ {
		vdd := p.Y.Value(yi)
		for xi := 0; xi < p.X.Steps; xi++ {
			x := p.X.Value(xi)
			ok, err := point(t, vdd, x)
			if err != nil {
				return nil, fmt.Errorf("shmoo: %s at (%g, %g): %w", t.Name, x, vdd, err)
			}
			cells[yi*p.X.Steps+xi] = ok
		}
	}
	return cells, nil
}

// merge accumulates a full grid of one test's outcomes into the overlay.
func (p *Plot) merge(cells []bool) {
	for c, ok := range cells {
		if ok {
			p.passCount[c]++
		}
	}
}
