// Package repro reproduces "Computational Intelligence Characterization
// Method of Semiconductor Device" (Liau & Schmitt-Landsiedel, DATE 2005):
// a worst-case device characterization flow that couples multiple-trip-point
// measurement and the Search-Until-Trip-Point algorithm with a fuzzy-coded
// neural-network voting machine and a dual-chromosome genetic algorithm on
// a simulated memory test chip and ATE.
//
// The paper's systems live under internal/ (see DESIGN.md for the full
// inventory), executables under cmd/, runnable walkthroughs under
// examples/, and the benchmark harness that regenerates every table and
// figure of the paper's evaluation in bench_test.go (results recorded in
// EXPERIMENTS.md).
package repro
