.PHONY: check test bench bench-parallel bench-obs bench-kernels tracestat

# The full CI gate: vet + build + race-enabled tests + the telemetry smoke
# run + the short benchmark passes that write BENCH_parallel.json,
# BENCH_obs.json and BENCH_kernels.json (with the allocs/op ceiling gate).
check:
	./ci.sh

test:
	go build ./... && go test ./...

# Every paper table/figure benchmark, one iteration each.
bench:
	go test -run '^$$' -bench . -benchtime 1x -timeout 60m .

# The worker-ladder benchmarks for the GA and shmoo hot paths.
bench-parallel:
	go test -run '^$$' -bench 'Parallel|MeasurementCache' -benchtime 1x -timeout 60m .

# The observability benchmarks: instrumented-flow cost vs the telemetry-off
# baseline.
bench-obs:
	go test -run '^$$' -bench 'Observability' -benchtime 1x -timeout 60m .

# The neural-kernel benchmarks with allocation profiling: train, per-sample
# ensemble voting and the batched entry point.
bench-kernels:
	go test -run '^$$' -bench 'LearningKernels' -benchmem -benchtime 20x -timeout 10m .

# Record a short instrumented run and analyze its trace: per-phase cost
# rollups, the critical path, and a Chrome trace-event export to load at
# chrome://tracing or ui.perfetto.dev.
tracestat:
	go run ./cmd/characterize -learn-tests 20 -trace /tmp/repro-demo.jsonl > /dev/null
	go run ./cmd/tracestat -chrome /tmp/repro-demo.chrome.json /tmp/repro-demo.jsonl
