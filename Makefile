.PHONY: ci check test invariants fuzz-smoke bench bench-parallel bench-obs bench-kernels bench-lot tracestat tracediff benchdiff baselines crash-demo ledger regress serve

# The full CI gate: vet + build + race-enabled tests + coverage floors +
# fuzz smoke + the telemetry smoke run + the short benchmark passes that
# write BENCH_parallel.json, BENCH_obs.json, BENCH_kernels.json (with the
# allocs/op ceiling gate) and BENCH_lot.json (with the streamed-lot speedup
# and warm-hit-rate gates).
ci:
	./ci.sh

# The pre-commit gate: static checks, the race-enabled suite, and the
# property-based invariant suites. Faster than `make ci` (no smoke runs or
# benchmarks); run `make ci` before merging.
check:
	go vet ./...
	go test -race ./...
	$(MAKE) invariants

test:
	go build ./... && go test ./...

# The seeded property-based invariant suites: the SUTP-vs-full-range
# differential oracle, bit-equivalence across worker counts and cache
# modes, fuzzy partition-of-unity, weight-file and trace round-trip
# closure, and the encoder/parser grammar pins. Every failure prints a
# -proptest.seed=N one-liner that replays the exact case.
invariants:
	go test -count=1 ./internal/search ./internal/fuzzy ./internal/neural \
		./internal/telemetry ./internal/obs ./internal/core ./internal/proptest \
		./internal/runstore ./internal/jobs

# Ten seconds of native fuzzing per target against the committed corpora.
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzSUTPBounds$$' -fuzztime 10s ./internal/search/
	go test -run '^$$' -fuzz '^FuzzWeightFileParse$$' -fuzztime 10s ./internal/neural/
	go test -run '^$$' -fuzz '^FuzzTraceParse$$' -fuzztime 10s ./internal/obs/
	go test -run '^$$' -fuzz '^FuzzPromEncode$$' -fuzztime 10s ./internal/obs/

# Every paper table/figure benchmark, one iteration each.
bench:
	go test -run '^$$' -bench . -benchtime 1x -timeout 60m .

# The worker-ladder benchmarks for the GA and shmoo hot paths.
bench-parallel:
	go test -run '^$$' -bench 'Parallel|MeasurementCache' -benchtime 1x -timeout 60m .

# The observability benchmarks: instrumented-flow cost vs the telemetry-off
# baseline.
bench-obs:
	go test -run '^$$' -bench 'Observability' -benchtime 1x -timeout 60m .

# The neural-kernel benchmarks with allocation profiling: train, per-sample
# ensemble voting and the batched entry point.
bench-kernels:
	go test -run '^$$' -bench 'LearningKernels' -benchmem -benchtime 20x -timeout 10m .

# The fab-scale lot pipeline benchmarks: the frozen per-die loop baseline
# against streamed screening at workers 1/2/8, with the disk cache off,
# cold and warm (dies/sec, hit rate, allocs per die).
bench-lot:
	go test -run '^$$' -bench 'LotScreen' -benchtime 1x -timeout 60m .

# Record a short instrumented run and analyze its trace: per-phase cost
# rollups, the critical path, and a Chrome trace-event export to load at
# chrome://tracing or ui.perfetto.dev.
tracestat:
	go run ./cmd/characterize -learn-tests 20 -trace /tmp/repro-demo.jsonl > /dev/null
	go run ./cmd/tracestat -chrome /tmp/repro-demo.chrome.json /tmp/repro-demo.jsonl

# Record two instrumented runs at different parallelism and diff them:
# identical workloads diff to zero (the determinism contract makes logical
# cost exactly comparable), so any nonzero delta is a real workload change.
tracediff:
	go run ./cmd/characterize -learn-tests 20 -parallel 1 -trace /tmp/repro-old.jsonl > /dev/null
	go run ./cmd/characterize -learn-tests 20 -parallel 8 -trace /tmp/repro-new.jsonl > /dev/null
	go run ./cmd/tracestat diff -fail-over 20 /tmp/repro-old.jsonl /tmp/repro-new.jsonl

# Gate the current BENCH_*.json files against the committed baselines/
# (counter metrics only; wall-clock metrics need `-time`).
benchdiff:
	for b in BENCH_kernels.json BENCH_obs.json BENCH_parallel.json BENCH_lot.json; do \
		go run ./cmd/tracestat benchdiff -fail-over 20 baselines/$$b $$b || exit 1; \
	done

# Accept the current benchmark numbers as the new regression baselines.
# Do this deliberately, in the same commit as the perf change it blesses.
baselines:
	cp BENCH_kernels.json BENCH_obs.json BENCH_parallel.json BENCH_lot.json baselines/

# Record three identical runs at different -parallel into a run ledger and
# list it: the content-addressed store collapses them into one record with
# three attempt sidecar lines.
ledger:
	go run ./cmd/characterize -learn-tests 20 -parallel 1 -run-dir /tmp/repro-ledger > /dev/null
	go run ./cmd/characterize -learn-tests 20 -parallel 8 -run-dir /tmp/repro-ledger > /dev/null
	go run ./cmd/tracestat ledger /tmp/repro-ledger

# Gate the ledger's newest record against the sliding-window baseline with
# the same semantics as `tracestat diff` — run `make ledger` first (twice,
# with a workload change in between, to see it trip).
regress:
	go run ./cmd/tracestat regress -fail-over 20 -min-measurements 10 /tmp/repro-ledger

# Boot the characterization job service: REST job API + run observatory +
# metrics on one port, with a crash-safe persistent queue. Submit work with
# curl (see the "Job service" section of the README); ^C shuts down cleanly
# and pending jobs resume on the next boot.
serve:
	go run ./cmd/charserved -listen 127.0.0.1:8080 \
		-queue-dir /tmp/repro-jobq -run-dir /tmp/repro-ledger

# Demonstrate the crash-bundle path end to end: inject a worker-pool panic
# and show the bundle (meta, flags, stacks, flight tail, metrics, report).
crash-demo:
	-go run ./cmd/characterize -learn-tests 20 -crash-dir /tmp/repro-crash -inject-fault task-panic
	ls /tmp/repro-crash/panic-*/
