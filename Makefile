.PHONY: check test bench bench-parallel

# The full CI gate: vet + build + race-enabled tests + the short benchmark
# pass that writes BENCH_parallel.json.
check:
	./ci.sh

test:
	go build ./... && go test ./...

# Every paper table/figure benchmark, one iteration each.
bench:
	go test -run '^$$' -bench . -benchtime 1x -timeout 60m .

# The worker-ladder benchmarks for the GA and shmoo hot paths.
bench-parallel:
	go test -run '^$$' -bench 'Parallel|MeasurementCache' -benchtime 1x -timeout 60m .
