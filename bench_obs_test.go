package repro_test

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/testgen"
)

// --- Observability ----------------------------------------------------------

// obsConfig is the telemetry benchmark workload: the fig. 5 flow at a size
// small enough for CI but large enough that the memo-cache sees GA
// duplicates.
func obsConfig(seed int64) core.Config {
	cfg := core.DefaultConfig(seed)
	cfg.LearnTests = 120
	cfg.EnsembleSize = 2
	cfg.HiddenLayers = []int{12}
	cfg.CandidatePool = 300
	cfg.SeedCount = 10
	cfg.GA.PopSize = 10
	cfg.GA.Islands = 2
	cfg.GA.MaxGenerations = 10
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	return cfg
}

// BenchmarkObservabilityInstrumentedFlow runs the fig. 5 flow with full
// telemetry (tracer + metrics + report) live, reporting the run's cache
// hit rate and ATE measurement count alongside ns/op — the numbers
// BENCH_obs.json tracks across PRs.
func BenchmarkObservabilityInstrumentedFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tel := telemetry.New("bench-obs", telemetry.NewTracer(io.Discard))
		cfg := obsConfig(78)
		cfg.Parallelism = 1
		cfg.Telemetry = tel
		tester, _ := newRig(b, 78)
		char, err := core.NewCharacterizer(cfg, tester)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := char.Learn(); err != nil {
			b.Fatal(err)
		}
		if _, err := char.Optimize(); err != nil {
			b.Fatal(err)
		}
		rep := tel.Report(telemetry.Cost{Measurements: tester.Stats().Measurements})
		if err := tel.Close(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.CacheHitRate(), "cache_hit_rate")
			b.ReportMetric(float64(rep.Total.Measurements), "measurements")
			b.ReportMetric(float64(rep.MeasurementsSaved()), "measurements_saved")
		}
	}
}

// BenchmarkObservabilityOverhead measures the same flow with telemetry
// disabled (nil handle, every hook a no-op) so the instrumentation cost
// shows up as the delta against BenchmarkObservabilityInstrumentedFlow.
func BenchmarkObservabilityOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := obsConfig(78)
		cfg.Parallelism = 1
		tester, _ := newRig(b, 78)
		char, err := core.NewCharacterizer(cfg, tester)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := char.Learn(); err != nil {
			b.Fatal(err)
		}
		if _, err := char.Optimize(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(tester.Stats().Measurements), "measurements")
		}
	}
}
