// Package repro_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§6). Each benchmark prints
// the rows or series the paper reports; run with
//
//	go test -bench=. -benchmem
//
// Mapping (see DESIGN.md §4 for the full experiment index):
//
//	BenchmarkTable1*          — Table 1 (March vs Random vs NN+GA)
//	BenchmarkFigure1*         — fig. 1 single-trip-point binary search
//	BenchmarkFigure2*         — fig. 2 multiple-trip-point variation
//	BenchmarkFigure3*         — fig. 3 search-until-trip-point savings
//	BenchmarkFigure4*         — fig. 4 learning scheme
//	BenchmarkFigure5*         — fig. 5 optimization scheme
//	BenchmarkFigure6*         — fig. 6 WCR classification
//	BenchmarkFigure7*         — fig. 7 T_DQ measurement
//	BenchmarkFigure8*         — fig. 8 shmoo overlay
//	BenchmarkAblation*        — design-choice ablations from DESIGN.md §5
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/ate"
	"repro/internal/charspec"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/fuzzy"
	"repro/internal/genetic"
	"repro/internal/neural"
	"repro/internal/pdn"
	"repro/internal/search"
	"repro/internal/shmoo"
	"repro/internal/testgen"
	"repro/internal/trippoint"
	"repro/internal/wcr"
)

// newRig builds the standard experimental rig: a typical-corner device on a
// seeded tester with a nominal-condition random generator.
func newRig(b *testing.B, seed int64) (*ate.ATE, *testgen.RandomGenerator) {
	b.Helper()
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		b.Fatal(err)
	}
	tester := ate.New(dev, seed)
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(seed+1, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	return tester, gen
}

// --- Table 1 ---------------------------------------------------------------

// BenchmarkTable1FullComparison regenerates Table 1: the deterministic
// March baseline, the best of 1000 random tests and the full NN+GA flow,
// reporting WCR and T_DQ per row. Paper: 0.619/32.3, 0.701/28.5, 0.904/22.1.
func BenchmarkTable1FullComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tester, _ := newRig(b, 71)
		tab, err := core.RunTable1(core.DefaultTable1Config(71), tester)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.Format())
			for _, r := range tab.Rows {
				b.ReportMetric(r.WCR, "WCR_"+sanitize(r.TestName))
				b.ReportMetric(r.Value, "ns_"+sanitize(r.TestName))
			}
			b.ReportMetric(float64(tester.Stats().Measurements), "measurements")
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkTable1MarchBaseline times just the deterministic row.
func BenchmarkTable1MarchBaseline(b *testing.B) {
	tester, _ := newRig(b, 72)
	cond := testgen.NominalConditions()
	suite, err := testgen.MarchSuite(testgen.MarchCMinus(), 0, 100, cond)
	if err != nil {
		b.Fatal(err)
	}
	spec, isMin := ate.TDQ.SpecValue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranking := wcr.NewRanking(spec, isMin)
		for _, t := range suite {
			res, err := (search.SuccessiveApproximation{}).Search(tester.Measurer(ate.TDQ, t), ate.TDQ.SearchOptions())
			if err != nil {
				b.Fatal(err)
			}
			ranking.Add(t.Name, res.TripPoint)
		}
		if worst, ok := ranking.Worst(); ok && i == 0 {
			b.ReportMetric(worst.WCR, "WCR")
			b.ReportMetric(worst.Value, "ns")
		}
	}
}

// BenchmarkTable1RandomBaseline times the 1000-random-test row.
func BenchmarkTable1RandomBaseline(b *testing.B) {
	spec, isMin := ate.TDQ.SpecValue()
	for i := 0; i < b.N; i++ {
		tester, gen := newRig(b, 73)
		runner := trippoint.NewRunner(tester, ate.TDQ)
		ranking := wcr.NewRanking(spec, isMin)
		for j := 0; j < 1000; j++ {
			t := gen.Next()
			m, err := runner.Measure(t)
			if err != nil {
				b.Fatal(err)
			}
			if m.Converged {
				ranking.Add(t.Name, m.TripPoint)
			}
		}
		if worst, ok := ranking.Worst(); ok && i == 0 {
			b.ReportMetric(worst.WCR, "WCR")
			b.ReportMetric(worst.Value, "ns")
			b.ReportMetric(float64(tester.Stats().Measurements), "measurements")
		}
	}
}

// --- Figure 1: single trip point search -------------------------------------

// BenchmarkFigure1BinarySearch reproduces fig. 1: a binary search locating
// one trip point of one pre-defined test, reporting the measurement count.
func BenchmarkFigure1BinarySearch(b *testing.B) {
	tester, gen := newRig(b, 74)
	t := gen.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := (search.Binary{}).Search(tester.Measurer(ate.TDQ, t), ate.TDQ.SearchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Measurements), "measurements")
			b.ReportMetric(res.TripPoint, "trip_ns")
		}
	}
}

// --- Figure 2: multiple trip point variation --------------------------------

// BenchmarkFigure2MultipleTripPoint reproduces fig. 2: N random tests, one
// trip point each; the DSV spread is the worst-case trip point variation.
func BenchmarkFigure2MultipleTripPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tester, gen := newRig(b, 75)
		runner := trippoint.NewRunner(tester, ate.TDQ)
		dsv, err := runner.MeasureAll(gen.Batch(100))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			s := dsv.Stats()
			b.Logf("fig.2: N=%d trip points: min %.2f (%s) max %.2f (%s) spread %.2f ns",
				s.N, s.Min, s.MinTest, s.Max, s.MaxTest, s.Range)
			b.ReportMetric(s.Range, "variation_ns")
			b.ReportMetric(s.Min, "worst_trip_ns")
		}
	}
}

// --- Figure 3: search until trip point --------------------------------------

// BenchmarkFigure3SearchUntilTripPoint reproduces the fig. 3 formulation:
// the measurement cost of a 100-test multiple-trip-point run with SUTP
// versus a full-range search per test. The paper's claim is the large
// CR(IT)/SF(IT) savings ratio.
func BenchmarkFigure3SearchUntilTripPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tester, gen := newRig(b, 76)
		tests := gen.Batch(100)

		sutpRunner := trippoint.NewRunner(tester, ate.TDQ)
		dsvS, err := sutpRunner.MeasureAll(tests)
		if err != nil {
			b.Fatal(err)
		}
		fullRunner := trippoint.NewRunner(tester, ate.TDQ)
		fullRunner.Searcher = search.SuccessiveApproximation{}
		dsvF, err := fullRunner.MeasureAll(tests)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sc, fc := dsvS.TotalMeasurements(), dsvF.TotalMeasurements()
			b.Logf("fig.3: SUTP %d vs full-range %d measurements over %d tests (%.1f×)",
				sc, fc, len(tests), float64(fc)/float64(sc))
			b.ReportMetric(float64(sc), "sutp_measurements")
			b.ReportMetric(float64(fc), "fullrange_measurements")
			b.ReportMetric(float64(fc)/float64(sc), "speedup")
		}
	}
}

// --- Figure 4: learning scheme ----------------------------------------------

// BenchmarkFigure4LearningScheme runs the fig. 4 loop: random tests →
// multiple trip points → fuzzy coding → NN ensemble with learnability and
// generalization checks → weight file.
func BenchmarkFigure4LearningScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tester, _ := newRig(b, 77)
		cfg := core.DefaultConfig(77)
		nominal := testgen.NominalConditions()
		cfg.FixedConditions = &nominal
		char, err := core.NewCharacterizer(cfg, tester)
		if err != nil {
			b.Fatal(err)
		}
		res, err := char.Learn()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("fig.4: %d measured tests, ensemble of %d, ensemble MSE %.5f",
				res.DSV.Len(), res.Ensemble.Size(), res.EnsembleValErr)
			b.ReportMetric(res.EnsembleValErr, "ensemble_mse")
			b.ReportMetric(float64(tester.Stats().Measurements), "measurements")
		}
	}
}

// --- Figure 5: optimization scheme ------------------------------------------

// BenchmarkFigure5OptimizationScheme runs the fig. 5 loop from a trained
// ensemble: NN seed proposal → dual-chromosome GA with ATE fitness →
// worst-case database.
func BenchmarkFigure5OptimizationScheme(b *testing.B) {
	tester, _ := newRig(b, 78)
	cfg := core.DefaultConfig(78)
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	char, err := core.NewCharacterizer(cfg, tester)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := char.Learn(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := char.Optimize()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best, _ := opt.Database.Worst()
			b.Logf("fig.5: GA best WCR %.3f (%s, %.1f ns) in %d evaluations, %d restarts",
				best.WCR, best.Class, best.Value, opt.GA.Evaluations, opt.GA.Restarts)
			b.ReportMetric(best.WCR, "best_WCR")
			b.ReportMetric(float64(opt.Measurements), "measurements")
		}
	}
}

// --- Figure 6: WCR classification -------------------------------------------

// BenchmarkFigure6WCRClassification reproduces the fig. 6 banding over a
// mixed population: production-style random tests (which all land in the
// pass band — the paper's point), the coordinated worst-case pattern at
// nominal supply (weakness band) and the same pattern at reduced supply
// and elevated temperature (fail band).
func BenchmarkFigure6WCRClassification(b *testing.B) {
	tester, gen := newRig(b, 79)
	spec, isMin := ate.TDQ.SpecValue()
	runner := trippoint.NewRunner(tester, ate.TDQ)

	tests := gen.Batch(200)
	words := dut.DefaultGeometry().Words()
	seq := make(testgen.Sequence, 0, 800)
	for j := 0; j < 200; j++ {
		base := uint32(0)
		if j%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	tests = append(tests,
		testgen.Test{Name: "WORST@nominal", Seq: seq, Cond: testgen.NominalConditions()},
		testgen.Test{Name: "WORST@corner", Seq: seq, Cond: testgen.Conditions{VddV: 1.62, TempC: 125, ClockMHz: 100}},
	)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranking := wcr.NewRanking(spec, isMin)
		for _, t := range tests {
			m, err := runner.Measure(t)
			if err != nil {
				b.Fatal(err)
			}
			ranking.Add(t.Name, m.TripPoint)
		}
		if i == 0 {
			counts := ranking.CountByClass()
			b.Logf("fig.6: pass %d, weakness %d, fail %d over %d tests",
				counts[wcr.Pass], counts[wcr.Weakness], counts[wcr.Fail], len(tests))
			b.ReportMetric(float64(counts[wcr.Pass]), "pass")
			b.ReportMetric(float64(counts[wcr.Weakness]), "weakness")
			b.ReportMetric(float64(counts[wcr.Fail]), "fail")
		}
	}
}

// --- Figure 7: T_DQ measurement ---------------------------------------------

// BenchmarkFigure7TDQMeasurement exercises the fig. 7 timing definition:
// one data-output-valid-window evaluation per iteration (profile + surface).
func BenchmarkFigure7TDQMeasurement(b *testing.B) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		b.Fatal(err)
	}
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(80, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	t := gen.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dev.Profile(t)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(p.TDQWindowNS(), "window_ns")
		}
	}
}

// --- Figure 8: shmoo plot ---------------------------------------------------

// BenchmarkFigure8ShmooPlot regenerates the fig. 8 overlay: many tests in
// one Vdd-vs-T_DQ shmoo, reporting the worst-case trip point variation.
// The paper overlays 1000 tests; the benchmark overlays 100 per iteration
// to keep iterations meaningful (scale with -benchtime).
func BenchmarkFigure8ShmooPlot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tester, gen := newRig(b, 81)
		plot, err := shmoo.NewPlot(shmoo.DefaultTDQAxis(), shmoo.DefaultVddAxis())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if err := plot.AddTest(tester, gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
		if i == 0 {
			b.Logf("fig.8:\n%s", plot.Render())
			b.ReportMetric(plot.WorstCaseVariation(), "variation_ns")
		}
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// BenchmarkAblationSUTPvsBinaryPerTest quantifies the SUTP design choice in
// isolation on a 50-test run.
func BenchmarkAblationSUTPvsBinaryPerTest(b *testing.B) {
	for _, mode := range []struct {
		name string
		mk   func() search.Searcher
	}{
		{"SUTP", func() search.Searcher { return &search.SUTP{SF: 0.4} }},
		{"SUTPRefined", func() search.Searcher { return &search.SUTP{SF: 0.4, Refine: true} }},
		{"Binary", func() search.Searcher { return search.Binary{} }},
		{"Linear", func() search.Searcher { return search.Linear{Step: 0.4} }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tester, gen := newRig(b, 82)
				runner := trippoint.NewRunner(tester, ate.TDQ)
				runner.Searcher = mode.mk()
				dsv, err := runner.MeasureAll(gen.Batch(50))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(dsv.TotalMeasurements())/50, "measurements/test")
				}
			}
		})
	}
}

// BenchmarkAblationEnsembleVsSingle quantifies the voting machine: ensemble
// error versus a single network on the same learning data.
func BenchmarkAblationEnsembleVsSingle(b *testing.B) {
	tester, _ := newRig(b, 83)
	cfg := core.DefaultConfig(83)
	cfg.LearnTests = 200
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	char, err := core.NewCharacterizer(cfg, tester)
	if err != nil {
		b.Fatal(err)
	}
	learned, err := char.Learn()
	if err != nil {
		b.Fatal(err)
	}
	data := learned.Dataset

	for _, size := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("members=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sizes := []int{testgen.NumFeatures, 20, 10, char.Coder().Width()}
				ens, _, err := neural.NewEnsemble(83, size, sizes, data, neural.DefaultTrainConfig(83))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					mse, err := ens.Evaluate(data)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(mse, "mse")
				}
			}
		})
	}
}

// BenchmarkAblationFuzzyVsNumericCoding compares the two trip-point codings
// by the measured quality of the seeds each one proposes.
func BenchmarkAblationFuzzyVsNumericCoding(b *testing.B) {
	for _, coding := range []fuzzy.Coding{fuzzy.CodingFuzzy, fuzzy.CodingNumeric} {
		b.Run(coding.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tester, _ := newRig(b, 84)
				cfg := core.DefaultConfig(84)
				cfg.Coding = coding
				nominal := testgen.NominalConditions()
				cfg.FixedConditions = &nominal
				char, err := core.NewCharacterizer(cfg, tester)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := char.Learn(); err != nil {
					b.Fatal(err)
				}
				cands, err := char.ProposeSeeds()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					spec, isMin := cfg.Parameter.SpecValue()
					sum := 0.0
					for _, c := range cands {
						p, err := tester.Profile(c.Test)
						if err != nil {
							b.Fatal(err)
						}
						sum += wcr.For(p.TDQWindowNS(), spec, isMin)
					}
					b.ReportMetric(sum/float64(len(cands)), "seed_mean_WCR")
				}
			}
		})
	}
}

// BenchmarkAblationNNSeededVsRandomGA compares GA convergence with NN seeds
// against a cold random start (fig. 5 step 1's value).
func BenchmarkAblationNNSeededVsRandomGA(b *testing.B) {
	tester, _ := newRig(b, 85)
	cfg := core.DefaultConfig(85)
	cfg.GA.MaxGenerations = 25
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	char, err := core.NewCharacterizer(cfg, tester)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := char.Learn(); err != nil {
		b.Fatal(err)
	}

	b.Run("nn-seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt, err := char.Optimize()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(opt.GA.Best.Fitness, "best_WCR")
			}
		}
	})
	b.Run("random-start", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt, err := char.OptimizeFrom(nil)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(opt.GA.Best.Fitness, "best_WCR")
			}
		}
	})
}

// BenchmarkAblationDualVsFrozenConditions compares evolving test conditions
// as a second chromosome against freezing them at nominal, on the Vddmin
// parameter where conditions matter (temperature shifts Vddmin).
func BenchmarkAblationDualVsFrozenConditions(b *testing.B) {
	mk := func(fixed bool, seed int64) float64 {
		tester, _ := newRig(b, seed)
		cfg := core.DefaultConfig(seed)
		cfg.Parameter = ate.VddMin
		cfg.LearnTests = 150
		cfg.GA.MaxGenerations = 25
		if fixed {
			nominal := testgen.NominalConditions()
			cfg.FixedConditions = &nominal
		}
		char, err := core.NewCharacterizer(cfg, tester)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := char.Learn(); err != nil {
			b.Fatal(err)
		}
		opt, err := char.Optimize()
		if err != nil {
			b.Fatal(err)
		}
		return opt.GA.Best.Fitness
	}
	b.Run("dual-chromosome", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := mk(false, 86)
			if i == 0 {
				b.ReportMetric(f, "best_WCR")
			}
		}
	})
	b.Run("frozen-conditions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := mk(true, 86)
			if i == 0 {
				b.ReportMetric(f, "best_WCR")
			}
		}
	})
}

// --- Micro-benchmarks of the substrates --------------------------------------

// BenchmarkDeviceProfile measures the cost of one sequence execution.
func BenchmarkDeviceProfile(b *testing.B) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		b.Fatal(err)
	}
	gen := testgen.NewRandomGenerator(90, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	t := gen.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Profile(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtraction measures the NN input encoding.
func BenchmarkFeatureExtraction(b *testing.B) {
	gen := testgen.NewRandomGenerator(91, 4096, testgen.DefaultConditionLimits())
	t := gen.Next()
	limits := testgen.DefaultConditionLimits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testgen.ExtractFeatures(t, limits)
	}
}

// BenchmarkEnsembleVote measures one voting-machine prediction.
func BenchmarkEnsembleVote(b *testing.B) {
	data := make(neural.Dataset, 50)
	gen := testgen.NewRandomGenerator(92, 4096, testgen.DefaultConditionLimits())
	limits := testgen.DefaultConditionLimits()
	for i := range data {
		data[i] = neural.Sample{
			Input:  testgen.ExtractFeatures(gen.Next(), limits),
			Target: []float64{0.5},
		}
	}
	cfg := neural.DefaultTrainConfig(92)
	cfg.Epochs = 10
	ens, _, err := neural.NewEnsemble(92, 3, []int{testgen.NumFeatures, 20, 10, 1}, data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := data[0].Input
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ens.Vote(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGAGeneration measures one GA generation on a synthetic fitness.
func BenchmarkGAGeneration(b *testing.B) {
	gen := testgen.NewRandomGenerator(93, 4096, testgen.DefaultConditionLimits())
	ops := genetic.NewOperators(93, gen)
	limits := testgen.DefaultConditionLimits()
	eval := genetic.EvaluatorFunc(func(t testgen.Test) (float64, error) {
		f := testgen.ExtractFeatures(t, limits)
		return f[testgen.FeatToggleMean], nil
	})
	cfg := genetic.DefaultConfig()
	cfg.MaxGenerations = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := genetic.NewOptimizer(cfg, ops, eval)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extended-system benchmarks ----------------------------------------------

// BenchmarkExtensionSpecExtraction measures the §1 environmental sweep: a
// worst-case test plus a March baseline over the full Vdd × temperature
// grid, reporting the extracted worst corner value.
func BenchmarkExtensionSpecExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tester, gen := newRig(b, 95)
		cond := testgen.NominalConditions()
		march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 50, 0x55555555, cond)
		if err != nil {
			b.Fatal(err)
		}
		tests := append(gen.Batch(3), march)
		rep, err := charspec.Extract(tester, ate.TDQ, tests, charspec.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("spec extraction: worst corner %s, worst %.2f ns, recommended %.2f ns, meets spec %v",
				rep.WorstCorner, rep.WorstValue, rep.RecommendedLimit, rep.MeetsSpec)
			b.ReportMetric(rep.WorstValue, "worst_ns")
			b.ReportMetric(float64(rep.Measurements), "measurements")
		}
	}
}

// BenchmarkExtensionLotScreen measures the §1 device-sample screen: the
// worst-case pattern over a 20-die lot.
func BenchmarkExtensionLotScreen(b *testing.B) {
	cond := testgen.NominalConditions()
	words := dut.DefaultGeometry().Words()
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	tests := []testgen.Test{{Name: "WORST", Seq: seq, Cond: cond}}
	dies := dut.NewDieLot(96, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.ScreenLot(ate.TDQ, tests, dies, dut.DefaultGeometry(), 96)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("lot screen: %s", rep.Format())
			b.ReportMetric(rep.SpreadLot, "lot_spread_ns")
			b.ReportMetric(float64(rep.ClassCounts[wcr.Weakness]+rep.ClassCounts[wcr.Fail]), "flagged_dies")
		}
	}
}

// BenchmarkExtensionThermalDrift measures drift detection on a self-heating
// tester (the §1/§4 drift scenario).
func BenchmarkExtensionThermalDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tester, gen := newRig(b, 97)
		tester.Heating = ate.DefaultThermal()
		runner := trippoint.NewRunner(tester, ate.TDQ)
		runner.Searcher = &search.SUTP{Refine: true}
		tt := gen.Next()
		for j := 0; j < 40; j++ {
			if _, err := runner.Measure(tt); err != nil {
				b.Fatal(err)
			}
		}
		drift := runner.DSV().DetectDrift()
		if i == 0 {
			b.Logf("thermal drift: slope %+.4f ns/test, total %.3f ns, significant %v",
				drift.Slope, drift.TotalDrift, drift.Significant)
			b.ReportMetric(drift.TotalDrift, "total_drift_ns")
		}
	}
}

// BenchmarkExtensionMinimizer measures worst-case test minimization (the
// §2 "localize the design weakness efficiently" step).
func BenchmarkExtensionMinimizer(b *testing.B) {
	tester, _ := newRig(b, 98)
	cfg := core.DefaultConfig(98)
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	char, err := core.NewCharacterizer(cfg, tester)
	if err != nil {
		b.Fatal(err)
	}
	words := dut.DefaultGeometry().Words()
	seq := make(testgen.Sequence, 0, 1000)
	for i := 0; i < 200; i++ {
		seq = append(seq, testgen.Vector{Op: testgen.OpRead, Addr: uint32(i % 8)})
	}
	for i := 0; i < 150; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	tt := testgen.Test{Name: "PADDED", Seq: seq, Cond: nominal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := char.Minimize(tt, core.DefaultMinimizeConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("minimizer: %d → %d vectors (%.1f×), WCR %.3f → %.3f, %d probes",
				len(res.Original.Seq), len(res.Minimized.Seq), res.ReductionFactor(),
				res.OriginalWCR, res.MinimizedWCR, res.Probes)
			b.ReportMetric(res.ReductionFactor(), "reduction")
		}
	}
}

// BenchmarkAblationBackpropVsGATraining compares the flow's default
// backpropagation trainer with the GA weight trainer of reference [13] on
// the same severity dataset.
func BenchmarkAblationBackpropVsGATraining(b *testing.B) {
	tester, _ := newRig(b, 99)
	cfg := core.DefaultConfig(99)
	cfg.LearnTests = 150
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	char, err := core.NewCharacterizer(cfg, tester)
	if err != nil {
		b.Fatal(err)
	}
	learned, err := char.Learn()
	if err != nil {
		b.Fatal(err)
	}
	data := learned.Dataset
	train, val := data.Split(99, 0.8)
	sizes := []int{testgen.NumFeatures, 20, 10, char.Coder().Width()}

	b.Run("backprop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := neural.New(99, sizes...)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := n.Train(train, val, neural.DefaultTrainConfig(99))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(rep.ValErr, "val_mse")
			}
		}
	})
	b.Run("ga-weights", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := neural.New(99, sizes...)
			if err != nil {
				b.Fatal(err)
			}
			gaCfg := neural.DefaultGATrainConfig(99)
			gaCfg.Generations = 120
			rep, err := n.TrainGA(train, val, gaCfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(rep.ValErr, "val_mse")
			}
		}
	})
}

// BenchmarkExtensionPDNAnalysis measures the power-delivery-network droop
// simulation over a worst-case test trace (the companion-work PSN physics).
func BenchmarkExtensionPDNAnalysis(b *testing.B) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		b.Fatal(err)
	}
	cond := testgen.NominalConditions()
	words := dev.Geometry().Words()
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	records, _, err := dev.Trace(testgen.Test{Name: "worst", Seq: seq, Cond: cond})
	if err != nil {
		b.Fatal(err)
	}
	network := pdn.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := network.Simulate(records, cond.VddV, cond.ClockMHz)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("PDN: peak droop %.3f V at cycle %d (f0 %.1f MHz, ζ %.2f)",
				res.PeakDroopV, res.PeakCycle, network.ResonantHz()/1e6, network.DampingRatio())
			b.ReportMetric(res.PeakDroopV, "peak_droop_V")
		}
	}
}

// BenchmarkExtensionProductionEscapes measures the manufacturing handoff:
// a 30-die production run under a March-only program versus one including
// the CI-found worst-case screen, reporting the escape counts.
func BenchmarkExtensionProductionEscapes(b *testing.B) {
	geom := dut.DefaultGeometry()
	words := geom.Words()
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	oracle := testgen.Test{Name: "WORST", Seq: seq, Cond: testgen.NominalConditions()}
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, testgen.NominalConditions())
	if err != nil {
		b.Fatal(err)
	}
	lot := make([]*dut.Die, 30)
	for i := range lot {
		if i%3 == 0 {
			lot[i] = dut.NewDie(i, dut.CornerSlow, dut.WithExtraTDQOffsetNS(-3))
		} else {
			lot[i] = dut.NewDie(i, dut.CornerTypical)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		marchProg, err := core.BuildProductionProgram(ate.TDQ, []testgen.Test{march}, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		marchRun, err := core.RunProduction(marchProg, oracle, lot, geom, 11)
		if err != nil {
			b.Fatal(err)
		}
		ciProg, err := core.BuildProductionProgram(ate.TDQ, []testgen.Test{march, oracle}, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		ciRun, err := core.RunProduction(ciProg, oracle, lot, geom, 11)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("production: March-only %d escapes (yield %.0f%%), with CI screen %d escapes (yield %.0f%%)",
				marchRun.Escapes, marchRun.Yield*100, ciRun.Escapes, ciRun.Yield*100)
			b.ReportMetric(float64(marchRun.Escapes), "march_escapes")
			b.ReportMetric(float64(ciRun.Escapes), "ci_escapes")
		}
	}
}

// BenchmarkExtensionRepairSession measures the row-redundancy repair loop
// on a weak-cell die.
func BenchmarkExtensionRepairSession(b *testing.B) {
	words := dut.DefaultGeometry().Words()
	seq := make(testgen.Sequence, 0, 700)
	for i := 0; i < 150; i++ {
		base := uint32(4)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	seq = append(seq,
		testgen.Vector{Op: testgen.OpWrite, Addr: 33, Data: 1},
		testgen.Vector{Op: testgen.OpRead, Addr: 33},
	)
	tt := testgen.Test{Name: "HOT", Seq: seq, Cond: testgen.NominalConditions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		die := dut.NewDie(0, dut.CornerTypical, dut.WithWeakCell(33, 1.85))
		dev, err := dut.NewDevice(dut.DefaultGeometry(), die)
		if err != nil {
			b.Fatal(err)
		}
		tester := ate.New(dev, 3)
		rep, err := core.RepairAndRetest(tester, []testgen.Test{tt})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.TotalRepairs), "rows_repaired")
		}
	}
}
