// Fab-scale lot pipeline benchmarks: the streamed ScreenLot against the
// pre-change per-die loop, across the 1/2/8 multi-site ladder and with the
// disk cache cold versus warm. The bit-equality tests in internal/core pin
// that every variant produces the identical LotReport, so these measure
// only dies/second, ATE measurement cost, disk-cache effectiveness and
// per-die allocation pressure — the numbers BENCH_lot.json tracks and
// ci.sh gates on.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/ate"
	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/trippoint"
)

// lotBenchDies is the lot size the acceptance gate runs at: 4 wafers of
// 2500 dies.
const (
	lotBenchWafers   = 4
	lotBenchPerWafer = 2500
	lotBenchSeed     = 78
)

// lotBenchTests is the screened test set: a coordinated worst-case pattern
// plus a windowed March C- baseline, the same shape cmd/lotchar screens.
func lotBenchTests(tb testing.TB) []testgen.Test {
	cond := testgen.NominalConditions()
	geom := dut.DefaultGeometry()
	words := geom.Words()
	seq := make(testgen.Sequence, 0, 200)
	for i := 0; i < 50; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	tests := []testgen.Test{{Name: "WORST-BUILTIN", Seq: seq, Cond: cond}}
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, cond)
	if err != nil {
		tb.Fatal(err)
	}
	return append(tests, march)
}

func lotBenchLot(tb testing.TB) *dut.WaferLot {
	lot, err := dut.NewWaferLot(lotBenchSeed, lotBenchWafers, lotBenchPerWafer)
	if err != nil {
		tb.Fatal(err)
	}
	return lot
}

// BenchmarkLotScreenPerDieLoop is the pre-streaming reference: one fresh
// device, tester insertion and searcher per die, serially — what ScreenLot
// compiled to before the pipeline landed. Its dies/sec is the baseline the
// streamed variants are gated against.
func BenchmarkLotScreenPerDieLoop(b *testing.B) {
	tests := lotBenchTests(b)
	lot := lotBenchLot(b)
	geom := dut.DefaultGeometry()
	for i := 0; i < b.N; i++ {
		var measurements int64
		for j := 0; j < lot.Len(); j++ {
			die := lot.Die(j)
			dev, err := dut.NewDevice(geom, die)
			if err != nil {
				b.Fatal(err)
			}
			tester := ate.New(dev, lotBenchSeed+int64(die.ID))
			runner := trippoint.NewRunner(tester, ate.TDQ)
			runner.Searcher = &search.SUTP{Refine: true}
			for _, t := range tests {
				if _, err := runner.Measure(t); err != nil {
					b.Fatal(err)
				}
				if _, err := tester.FunctionalPass(t); err != nil {
					b.Fatal(err)
				}
			}
			measurements += tester.Stats().Measurements
		}
		if i == 0 {
			b.ReportMetric(float64(lot.Len())/b.Elapsed().Seconds(), "dies_per_sec")
			b.ReportMetric(float64(measurements), "measurements")
		}
	}
}

// BenchmarkLotScreenStream runs the streamed pipeline across the worker
// ladder, cache off / cold / warm. Warm variants pre-populate the store
// outside the timer, so the timed run serves every die from disk; their
// hit_rate metric is the ≥50% CI gate, and allocs_per_die (cache=off,
// Mallocs over the lot) is the streaming allocation gate.
func BenchmarkLotScreenStream(b *testing.B) {
	tests := lotBenchTests(b)
	lot := lotBenchLot(b)
	geom := dut.DefaultGeometry()

	run := func(b *testing.B, workers int, store *cachestore.Store) *core.LotReport {
		rep, err := core.ScreenLotStream(ate.TDQ, tests, lot, geom, lotBenchSeed, core.LotOptions{
			Workers: workers,
			Cache:   store,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}

	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d/cache=off", workers), func(b *testing.B) {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := 0; i < b.N; i++ {
				rep := run(b, workers, nil)
				if i == 0 {
					b.ReportMetric(float64(lot.Len())/b.Elapsed().Seconds(), "dies_per_sec")
					b.ReportMetric(float64(rep.Measurements), "measurements")
				}
			}
			runtime.ReadMemStats(&m1)
			b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(lot.Len()*b.N), "allocs_per_die")
		})

		b.Run(fmt.Sprintf("workers=%d/cache=cold", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, err := cachestore.Open(b.TempDir(), core.LotCacheScope)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep := run(b, workers, store)
				if i == 0 {
					st := store.Stats()
					b.ReportMetric(float64(lot.Len())/b.Elapsed().Seconds(), "dies_per_sec")
					b.ReportMetric(float64(rep.Measurements), "measurements")
					b.ReportMetric(telemetry.HitRate(st.Hits, st.Misses), "hit_rate")
					b.ReportMetric(float64(st.BytesOnDisk), "bytes_on_disk")
				}
			}
		})

		b.Run(fmt.Sprintf("workers=%d/cache=warm", workers), func(b *testing.B) {
			dir := b.TempDir()
			seedStore, err := cachestore.Open(dir, core.LotCacheScope)
			if err != nil {
				b.Fatal(err)
			}
			run(b, 8, seedStore) // populate outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, err := cachestore.Open(dir, core.LotCacheScope)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep := run(b, workers, store)
				if i == 0 {
					st := store.Stats()
					b.ReportMetric(float64(lot.Len())/b.Elapsed().Seconds(), "dies_per_sec")
					b.ReportMetric(float64(rep.Measurements), "measurements")
					b.ReportMetric(telemetry.HitRate(st.Hits, st.Misses), "hit_rate")
					b.ReportMetric(float64(st.BytesOnDisk), "bytes_on_disk")
				}
			}
		})
	}
}
