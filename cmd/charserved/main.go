// Command charserved is the characterization job service: a REST/JSON API
// over the flows the cmd/ binaries run, multiplexing concurrent jobs over
// per-job worker fleets under one global budget, with a crash-safe
// persistent queue, per-job SSE progress, namespaced /metrics and a shared
// content-addressed run ledger. A job submitted here produces the same run
// ID and bit-identical trace bytes as the equivalent CLI invocation.
//
// Usage:
//
//	charserved -listen 127.0.0.1:8080 -queue-dir q -run-dir runs
//	curl -X POST :8080/jobs -d '{"flow":"learn","seed":7,"args":{"learn-tests":"50"}}'
//	curl :8080/jobs/j000001/progress?sse=1
//
// SIGINT/SIGTERM shuts down cleanly: dispatch stops, running jobs are
// interrupted at their next phase boundary and stay journalled as running,
// and the next boot resumes exactly the pending set.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/jobs"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("charserved: ")

	listen := flag.String("listen", "127.0.0.1:8080", "serve the job API and admin endpoints on this addr:port (:0 picks a free port)")
	queueDir := flag.String("queue-dir", "", "persist the job queue journal in this directory (required; survives restarts)")
	runDir := flag.String("run-dir", "", "finalize finished jobs into the content-addressed run ledger in this directory (required)")
	workers := flag.Int("workers", runtime.NumCPU(), "global worker budget shared by all concurrently running jobs")
	heartbeat := flag.Duration("heartbeat", 0, "SSE heartbeat interval on idle progress streams (0 = default, negative disables)")
	flag.Parse()

	if err := jobs.ValidateServer(*listen, *queueDir, *runDir, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "%s%v\n", log.Prefix(), err)
		os.Exit(2)
	}

	srv, err := jobs.New(jobs.Options{
		QueueDir:  *queueDir,
		RunDir:    *runDir,
		Workers:   *workers,
		Heartbeat: *heartbeat,
		Log:       log.Default(),
	})
	if err != nil {
		log.Fatal(err)
	}

	admin, err := obs.Start(*listen, obs.Options{
		Run:       "charserved",
		Metrics:   srv.MetricsSnapshot,
		Ledger:    srv.Store(),
		Jobs:      srv.Handler(),
		Heartbeat: *heartbeat,
	})
	if err != nil {
		srv.Close() //nolint:errcheck // boot failed; exiting anyway
		log.Fatal(err)
	}
	// The resolved address goes to stderr so scripts booting with :0 can
	// read the port back (ci.sh does exactly that).
	fmt.Fprintf(os.Stderr, "charserved: serving http://%s/ (jobs, runs, metrics; budget %d workers)\n",
		admin.Addr(), *workers)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	log.Printf("received %s, shutting down", sig)

	// Stop accepting and interrupt running jobs first, then close the
	// listener so in-flight responses drain.
	if err := srv.Close(); err != nil {
		log.Printf("queue shutdown: %v", err)
	}
	if err := admin.Close(); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("shutdown complete (pending jobs resume on next boot)")
}
