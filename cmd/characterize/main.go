// Command characterize runs the paper's computational-intelligence device
// characterization flow end to end on the simulated memory test chip:
// learning scheme (fig. 4), optimization scheme (fig. 5), and the Table 1
// comparison against the deterministic March and pure random baselines.
//
// The flow body lives in internal/cli (RunCharacterize) so the charserved
// job service executes the identical code path — a submitted job and this
// binary produce the same run ledger ID and bit-identical trace bytes.
//
// Usage:
//
//	characterize -table1                 # reproduce Table 1
//	characterize -learn-only             # stop after the learning scheme
//	characterize -param tdq -weights w.json -db worst.json
//	characterize -param vddmin -seed 7   # characterize another parameter
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	common := cli.Register(nil)
	flags := cli.RegisterCharacterizeFlags(flag.CommandLine)
	flag.Parse()

	// Main validates the flag combinations up front and routes panics and
	// fatal errors through the -crash-dir bundle path before exiting.
	common.Main(func() error {
		return cli.RunCharacterize(common, flags, os.Stdout)
	})
}
