// Command characterize runs the paper's computational-intelligence device
// characterization flow end to end on the simulated memory test chip:
// learning scheme (fig. 4), optimization scheme (fig. 5), and the Table 1
// comparison against the deterministic March and pure random baselines.
//
// Usage:
//
//	characterize -table1                 # reproduce Table 1
//	characterize -param tdq -weights w.json -db worst.json
//	characterize -param vddmin -seed 7   # characterize another parameter
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ate"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/neural"
	"repro/internal/pdn"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	common := cli.Register(nil)
	var (
		paramName  = flag.String("param", "tdq", "parameter to characterize: tdq, fmax, vddmin")
		table1     = flag.Bool("table1", false, "reproduce the paper's Table 1 comparison")
		learnTests = flag.Int("learn-tests", 300, "number of measured tests in the learning phase")
		randTests  = flag.Int("random-tests", 1000, "random tests in the Table 1 baseline")
		corner     = flag.String("corner", "tt", "process corner of the device: tt, ff, ss")
		weightsOut = flag.String("weights", "", "write the trained NN weight file here")
		dbOut      = flag.String("db", "", "write the worst-case test database here")
		patternOut = flag.String("patterns", "", "write the worst-case tests as a text vector file here")
		traceOut   = flag.String("cycle-trace", "", "write the worst test's per-cycle trace as CSV here (with PDN droop analysis)")
		minimize   = flag.Bool("minimize", false, "minimize the worst-case test for failure analysis")
		evolveCond = flag.Bool("evolve-conditions", false, "let the GA evolve test conditions (default: fixed at nominal)")
	)
	flag.Parse()

	// Main validates the flag combinations up front and routes panics and
	// fatal errors through the -crash-dir bundle path before exiting.
	common.Main(func() (err error) {
		stopProfiles, err := common.StartProfiles()
		if err != nil {
			return err
		}
		defer func() {
			if perr := stopProfiles(); perr != nil && err == nil {
				err = perr
			}
		}()

		param, err := parseParam(*paramName)
		if err != nil {
			return err
		}
		die, err := parseCorner(*corner)
		if err != nil {
			return err
		}

		dev, err := dut.NewDevice(dut.DefaultGeometry(), die)
		if err != nil {
			return err
		}
		tester := ate.New(dev, common.Seed)

		runName := "characterize"
		if *table1 {
			runName = "table1"
		}
		tel, err := common.StartTelemetry(runName)
		if err != nil {
			return err
		}

		cfg := core.DefaultConfig(common.Seed)
		cfg.Parameter = param
		cfg.LearnTests = *learnTests
		cfg.Parallelism = common.Parallel
		cfg.Scheduler = common.Scheduler
		cfg.DisableMeasurementCache = common.NoCache
		cfg.Telemetry = tel
		if !*evolveCond {
			nominal := testgen.NominalConditions()
			cfg.FixedConditions = &nominal
		}

		if *table1 {
			t1cfg := core.Table1Config{Flow: cfg, RandomTests: *randTests, MarchWindowWords: 100}
			tab, err := core.RunTable1(t1cfg, tester)
			if err != nil {
				return err
			}
			fmt.Print(tab.Format())
			cli.PrintCacheSummary(os.Stdout, tab.CacheHits, tab.CacheMisses)
			return common.FinishTelemetry(os.Stdout, tel, tab.Stats)
		}

		char, err := core.NewCharacterizer(cfg, tester)
		if err != nil {
			return err
		}
		defer char.Close()

		// With -cache-dir, recover the previous identical run's memoized
		// fitness values: the store scope binds parameter, geometry, die and
		// seed, so only entries this exact flow produced ever load.
		memoStore, err := common.OpenCacheStore(char.MemoCacheScope())
		if err != nil {
			return err
		}
		if memoStore != nil {
			if n := char.PrimeMemoCache(memoStore); n > 0 {
				fmt.Printf("disk cache: primed %d memoized measurements from %s\n", n, common.CacheDir)
			}
		}

		fmt.Printf("Learning scheme (fig. 4): %d random tests on %s die, parameter %s\n",
			cfg.LearnTests, die.Corner, param)
		learned, err := char.Learn()
		if err != nil {
			return err
		}
		stats := learned.DSV.Stats()
		fmt.Printf("  trip points: min %.3f %s (%s), max %.3f %s, spread %.3f %s\n",
			stats.Min, param.Unit(), stats.MinTest, stats.Max, param.Unit(), stats.Range, param.Unit())
		fmt.Printf("  SUTP cost: first search %d measurements, follow-up mean %.1f\n",
			stats.FirstSearchCost, stats.FollowupSearchCost)
		_, isMin := param.SpecValue()
		if iv, err := learned.DSV.WorstCaseInterval(isMin, 0.05, 1000, common.Seed); err == nil {
			fmt.Printf("  worst trip bootstrap 95%% interval: [%.3f, %.3f] %s (observed %.3f)\n",
				iv.Lo, iv.Hi, param.Unit(), iv.Observed)
		}
		fmt.Printf("  ensemble of %d networks, MSE %.5f\n", learned.Ensemble.Size(), learned.EnsembleValErr)
		for i, rep := range learned.Reports {
			fmt.Printf("  member %d: %d epochs, train %.5f, val %.5f, learned=%v generalized=%v\n",
				i, rep.Epochs, rep.TrainErr, rep.ValErr, rep.Learned, rep.Generalized)
		}

		imps, err := neural.PermutationImportance(learned.Ensemble, learned.Dataset, common.Seed, 3)
		if err != nil {
			return err
		}
		featNames := testgen.FeatureNames()
		fmt.Printf("  NN feature importance (top 4):")
		for i, im := range imps {
			if i >= 4 {
				break
			}
			fmt.Printf(" %s=%.5f", featNames[im.Feature], im.DeltaMSE)
		}
		fmt.Println()

		if *weightsOut != "" {
			if err := char.SaveWeights(*weightsOut); err != nil {
				return err
			}
			fmt.Printf("  weight file written to %s\n", *weightsOut)
		}

		fmt.Println("Optimization scheme (fig. 5): NN-seeded dual-chromosome GA")
		opt, err := char.Optimize()
		if err != nil {
			return err
		}
		best, ok := opt.Database.Worst()
		if !ok {
			return fmt.Errorf("optimization produced no worst-case test")
		}
		fmt.Printf("  GA: %d generations, %d evaluations, %d restarts, %d ATE measurements\n",
			opt.GA.Generations, opt.GA.Evaluations, opt.GA.Restarts, opt.Measurements)
		hits, misses := char.CacheStats()
		cli.PrintCacheSummary(os.Stdout, hits, misses)
		if memoStore != nil {
			n, err := char.PersistMemoCache(memoStore)
			if err != nil {
				return err
			}
			fmt.Printf("  disk cache: %d memoized measurements persisted (%d bytes on disk)\n",
				n, memoStore.BytesOnDisk())
			cli.RecordDiskCache(tel, memoStore)
		}
		fmt.Printf("  worst case: %s  WCR %.3f (%s)  %s = %.3f %s\n",
			best.Test.Name, best.WCR, best.Class, param, best.Value, param.Unit())
		if best.Class == wcr.Weakness || best.Class == wcr.Fail {
			fmt.Println("  → design weakness candidate: schedule wafer-probe / circuit-level analysis")
		}
		fmt.Printf("  database: %d entries\n", opt.Database.Len())
		for i, e := range opt.Database.Entries {
			if i >= 5 {
				fmt.Printf("  … %d more\n", opt.Database.Len()-5)
				break
			}
			fmt.Printf("   %2d. %-10s WCR %.3f (%s) %.3f %s\n", i+1, e.Test.Name, e.WCR, e.Class, e.Value, param.Unit())
		}

		// Fuzzy rule-base diagnosis of the worst test (§5's linguistic output).
		diag, err := core.NewDiagnosis()
		if err != nil {
			return err
		}
		expl, err := diag.ExplainTest(best.Test, char.Generator().Limits())
		if err != nil {
			return err
		}
		fmt.Printf("  diagnosis: %s\n", expl)

		if *minimize {
			res, err := char.Minimize(best.Test, core.DefaultMinimizeConfig())
			if err != nil {
				return err
			}
			fmt.Printf("  minimized: %d → %d vectors (%.1f×), WCR %.3f → %.3f, %d probes\n",
				len(res.Original.Seq), len(res.Minimized.Seq), res.ReductionFactor(),
				res.OriginalWCR, res.MinimizedWCR, res.Probes)
		}

		if *dbOut != "" {
			if err := opt.Database.SaveFile(*dbOut); err != nil {
				return err
			}
			fmt.Printf("  database written to %s\n", *dbOut)
		}
		if *traceOut != "" {
			records, _, err := dev.Trace(best.Test)
			if err != nil {
				return err
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := dut.WriteTraceCSV(f, records); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  trace: %d cycles written to %s\n", len(records), *traceOut)
			if start, end, mean, ok := dut.HotWindow(records, 32); ok {
				fmt.Printf("  hot window: cycles %d–%d (mean SSN %.2f)\n", start, end, mean)
			}
			network := pdn.Default()
			droop, err := network.Simulate(records, best.Test.Cond.VddV, best.Test.Cond.ClockMHz)
			if err != nil {
				return err
			}
			fmt.Printf("  PDN: peak droop %.3f V at %.1f ns (cycle %d), mean %.4f V; network f0 %.1f MHz, ζ %.2f\n",
				droop.PeakDroopV, droop.PeakAtNS, droop.PeakCycle, droop.MeanDroopV,
				network.ResonantHz()/1e6, network.DampingRatio())
		}

		if *patternOut != "" {
			f, err := os.Create(*patternOut)
			if err != nil {
				return err
			}
			tests := make([]testgen.Test, 0, opt.Database.Len())
			for _, e := range opt.Database.Entries {
				tests = append(tests, e.Test)
			}
			if err := testgen.WriteTests(f, tests); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  %d pattern(s) written to %s\n", len(tests), *patternOut)
		}

		s := tester.Stats()
		fmt.Printf("Tester totals: %d measurements, %d vectors, %.2f s simulated test time\n",
			s.Measurements, s.VectorsApplied, s.TestTimeSec)
		return common.FinishTelemetry(os.Stdout, tel, s)
	})
}

func parseParam(s string) (ate.Parameter, error) {
	switch s {
	case "tdq":
		return ate.TDQ, nil
	case "fmax":
		return ate.Fmax, nil
	case "vddmin":
		return ate.VddMin, nil
	default:
		return 0, fmt.Errorf("unknown parameter %q (want tdq, fmax or vddmin)", s)
	}
}

func parseCorner(s string) (*dut.Die, error) {
	switch s {
	case "tt":
		return dut.NewDie(0, dut.CornerTypical), nil
	case "ff":
		return dut.NewDie(0, dut.CornerFast), nil
	case "ss":
		return dut.NewDie(0, dut.CornerSlow), nil
	default:
		return nil, fmt.Errorf("unknown corner %q (want tt, ff or ss)", s)
	}
}
