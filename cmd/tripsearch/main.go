// Command tripsearch compares the trip-point search algorithms on the
// simulated device: the classic ATE baselines (linear, binary, successive
// approximation — fig. 1) against the paper's Search Until Trip Point
// method (fig. 3), reporting trip points and measurement costs over a run
// of random tests.
//
// Usage:
//
//	tripsearch -tests 50
//	tripsearch -param vddmin -tests 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ate"
	"repro/internal/cli"
	"repro/internal/dut"
	"repro/internal/parallel"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/trippoint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tripsearch: ")

	common := cli.Register(nil)
	var (
		tests     = flag.Int("tests", 50, "number of random tests per algorithm")
		paramName = flag.String("param", "tdq", "parameter: tdq, fmax, vddmin")
		directed  = flag.Bool("directed", false, "also measure the directed baseline suite (March + stress patterns)")
	)
	flag.Parse()
	common.Main(func() (err error) {
		seed, par := &common.Seed, &common.Parallel

		stopProfiles, err := common.StartProfiles()
		if err != nil {
			return err
		}
		defer func() {
			if perr := stopProfiles(); perr != nil && err == nil {
				err = perr
			}
		}()

		var param ate.Parameter
		switch *paramName {
		case "tdq":
			param = ate.TDQ
		case "fmax":
			param = ate.Fmax
		case "vddmin":
			param = ate.VddMin
		default:
			return fmt.Errorf("unknown parameter %q", *paramName)
		}

		dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
		if err != nil {
			return err
		}
		tester := ate.New(dev, *seed)
		tel, err := common.StartTelemetry("tripsearch")
		if err != nil {
			return err
		}
		cond := testgen.NominalConditions()
		gen := testgen.NewRandomGenerator(*seed+1, dev.Geometry().Words(), testgen.DefaultConditionLimits())
		gen.FixedConditions = &cond
		batch := gen.Batch(*tests)

		algos := []struct {
			name string
			mk   func() search.Searcher
		}{
			{"linear", func() search.Searcher { return search.Linear{Step: param.Resolution() * 4} }},
			{"binary", func() search.Searcher { return search.Binary{} }},
			{"successive-approx", func() search.Searcher { return search.SuccessiveApproximation{} }},
			{"SUTP (paper)", func() search.Searcher { return &search.SUTP{SF: 4 * param.Resolution()} }},
			{"SUTP refined", func() search.Searcher { return &search.SUTP{SF: 4 * param.Resolution(), Refine: true} }},
		}

		opt := param.SearchOptions()
		fmt.Printf("Trip-point search comparison: %s over [%g, %g] %s, resolution %g, %d tests\n\n",
			param, opt.Lo, opt.Hi, param.Unit(), opt.Resolution, *tests)
		fmt.Printf("%-18s %12s %15s %12s %12s\n", "algorithm", "total meas", "meas/test", "mean trip", "spread")

		// Each algorithm measures the same batch on its own forked insertion —
		// the rows are independent, so they fan across workers and print in
		// declaration order regardless of scheduling.
		ph := tel.StartPhase("search-compare")
		rows := make([]*trippoint.DSV, len(algos))
		err = parallel.Run(len(algos), *par, func(int) (*ate.ATE, error) {
			return tester.Fork(*seed)
		}, func(wk *ate.ATE, i int) error {
			wk.Reseed(*seed + int64(i))
			runner := trippoint.NewRunner(wk, param)
			runner.Searcher = algos[i].mk()
			dsv, err := runner.MeasureAll(batch)
			if err != nil {
				return err
			}
			rows[i] = dsv
			return nil
		})
		if err != nil {
			return err
		}
		// Replay each row in declaration order so searches land in the trace at
		// a deterministic point regardless of how the workers were scheduled.
		fullBudget := opt.FullRangeBudget()
		var compareCost telemetry.Cost
		for i, dsv := range rows {
			span := ph.Span().Child("algorithm", telemetry.S("name", algos[i].name))
			for _, m := range dsv.Values {
				tel.RecordSearch(m.Measurements, fullBudget, m.Converged)
			}
			tel.RecordItem("algorithm", i+1, len(algos))
			span.End(telemetry.I("measurements", int64(dsv.TotalMeasurements())))
			compareCost.Measurements += int64(dsv.TotalMeasurements())
			s := dsv.Stats()
			fmt.Printf("%-18s %12d %15.1f %9.3f %s %9.3f %s\n",
				algos[i].name, dsv.TotalMeasurements(),
				float64(dsv.TotalMeasurements())/float64(*tests),
				s.Mean, param.Unit(), s.Range, param.Unit())
		}
		ph.End(compareCost)

		fmt.Printf("\nSUTP cost structure (fig. 3): first search establishes RTP over the full\n")
		fmt.Printf("characterization range CR; every later search steps outward from RTP in\n")
		fmt.Printf("SF(IT) = SF·IT increments, so cost per test collapses once RTP exists.\n")
		ph = tel.StartPhase("sutp-cost")
		statsBefore := tester.Stats()
		runner := trippoint.NewRunner(tester, param)
		dsv, err := runner.MeasureAll(batch)
		if err != nil {
			return err
		}
		runnerBudget := runner.Options.FullRangeBudget()
		for _, m := range dsv.Values {
			tel.RecordSearch(m.Measurements, runnerBudget, m.Converged)
		}
		ph.End(cli.Delta(statsBefore, tester.Stats()))
		s := dsv.Stats()
		fmt.Printf("first search: %d measurements, follow-up mean: %.1f measurements\n",
			s.FirstSearchCost, s.FollowupSearchCost)

		if *directed {
			fmt.Printf("\nDirected baseline landscape (%s per pattern):\n", param)
			geom := dev.Geometry()
			suite, err := testgen.DirectedSuite(geom.Words(), uint32(geom.Cols), cond)
			if err != nil {
				return err
			}
			march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, cond)
			if err != nil {
				return err
			}
			suite = append([]testgen.Test{march}, suite...)
			dr := trippoint.NewRunner(tester, param)
			dr.Searcher = &search.SUTP{Refine: true}
			for _, t := range suite {
				m, err := dr.Measure(t)
				if err != nil {
					return err
				}
				fmt.Printf("  %-18s %8.3f %s (%d measurements)\n", t.Name, m.TripPoint, param.Unit(), m.Measurements)
			}
			ds := dr.DSV().Stats()
			worstVal, worstName := ds.Min, ds.MinTest
			if _, isMin := param.SpecValue(); !isMin {
				worstVal, worstName = ds.Max, ds.MaxTest // max-spec: larger is worse
			}
			fmt.Printf("directed worst: %.3f %s by %s — compare the NN+GA result from cmd/characterize\n",
				worstVal, param.Unit(), worstName)
		}

		// The comparison rows ran on forked insertions; fold their cost into
		// the serial tester's own counters for the report total.
		total := tester.Stats()
		total.Measurements += compareCost.Measurements
		return common.FinishTelemetry(os.Stdout, tel, total)
	})
}
