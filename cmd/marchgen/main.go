// Command marchgen expands March algorithms into runnable pattern files.
// Algorithms come from the built-in library (MATS, MATS+, MATS++, March
// X/Y/A/B/C-/SS/LR) or from element notation given on the command line,
// using either the ⇑/⇓/⇕ arrows of the literature or the ASCII u/d/a
// fallbacks.
//
// Usage:
//
//	marchgen -list
//	marchgen -alg "March C-" -words 100 -o marchc.pat
//	marchgen -notation "a(w0); u(r0,w1); d(r1,w0)" -name my-march -words 64
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/ate"
	"repro/internal/cli"
	"repro/internal/telemetry"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("marchgen: ")

	common := cli.Register(nil)
	var (
		list     = flag.Bool("list", false, "list the built-in algorithm library")
		algName  = flag.String("alg", "", "library algorithm to expand")
		notation = flag.String("notation", "", "explicit element notation to parse instead of -alg")
		name     = flag.String("name", "custom", "algorithm name for -notation")
		base     = flag.Uint("base", 0, "first address of the expansion window")
		words    = flag.Uint("words", 100, "window width in words")
		bg       = flag.Uint("background", 0x55555555, "data background")
		vdd      = flag.Float64("vdd", 1.8, "supply condition (V)")
		out      = flag.String("o", "", "output pattern file (default stdout)")
	)
	flag.Parse()
	common.Main(func() (err error) {
		stopProfiles, err := common.StartProfiles()
		if err != nil {
			return err
		}
		defer func() {
			if perr := stopProfiles(); perr != nil && err == nil {
				err = perr
			}
		}()

		if *list {
			names := testgen.MarchLibraryNames()
			sort.Strings(names)
			fmt.Printf("%-10s %-5s %s\n", "name", "kN", "notation")
			for _, n := range names {
				alg, err := testgen.MarchFromLibrary(n)
				if err != nil {
					return err
				}
				fmt.Printf("%-10s %2dN   %s\n", n, alg.Complexity(), testgen.FormatMarch(alg))
			}
			return nil
		}

		tel, err := common.StartTelemetry("marchgen")
		if err != nil {
			return err
		}

		var alg testgen.MarchAlgorithm
		switch {
		case *notation != "":
			alg, err = testgen.ParseMarch(*name, *notation)
		case *algName != "":
			alg, err = testgen.MarchFromLibrary(*algName)
		default:
			return fmt.Errorf("need -list, -alg or -notation")
		}
		if err != nil {
			return err
		}

		cond := testgen.NominalConditions()
		cond.VddV = *vdd
		test, err := testgen.MarchTest(alg, uint32(*base), uint32(*words), uint32(*bg), cond)
		if err != nil {
			return err
		}

		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := testgen.WriteTests(w, []testgen.Test{test}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "marchgen: %s expanded to %d vectors (%dN over %d words)\n",
			alg.Name, len(test.Seq), alg.Complexity(), *words)

		tel.StartPhase("march-expand").End(telemetry.Cost{Vectors: int64(len(test.Seq))})
		return common.FinishTelemetry(os.Stdout, tel, ate.Stats{VectorsApplied: int64(len(test.Seq))})
	})
}
