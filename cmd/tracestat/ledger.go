package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore"
)

// renderTraceDiff prints a trace diff in the chosen format; the JSON form is
// the shared TraceDiffJSON schema (`/runs/diff` serves the same bytes).
func renderTraceDiff(d *obs.TraceDiff, asJSON bool) error {
	if asJSON {
		return d.WriteJSON(os.Stdout)
	}
	return d.Render(os.Stdout)
}

// runLedger implements `tracestat ledger [-flow NAME] [-id RUNID] [-json]
// rundir`: a table of the ledger's records (or one record's full manifest
// and attempt history with -id). Exit codes: 0 ok, 1 error, 2 usage.
func runLedger(args []string) int {
	fs := flag.NewFlagSet("tracestat ledger", flag.ExitOnError)
	flow := fs.String("flow", "", "only list records of this flow")
	id := fs.String("id", "", "inspect one record: manifest, report totals and attempt history")
	jsonOut := fs.Bool("json", false, "print machine-readable JSON instead of the table")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tracestat ledger [flags] rundir\n")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	st, err := runstore.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat ledger:", err)
		return 1
	}

	if *id != "" {
		return inspectRecord(st, *id, *jsonOut)
	}

	sums, err := st.List()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat ledger:", err)
		return 1
	}
	if *flow != "" {
		kept := sums[:0]
		for _, sum := range sums {
			if sum.Manifest.Flow == *flow {
				kept = append(kept, sum)
			}
		}
		sums = kept
	}

	if *jsonOut {
		type row struct {
			ID       string                `json:"id"`
			Manifest runstore.Manifest     `json:"manifest"`
			Totals   runstore.ReportTotals `json:"totals"`
			Attempts []runstore.Attempt    `json:"attempts,omitempty"`
		}
		rows := make([]row, 0, len(sums))
		for _, sum := range sums {
			rows = append(rows, row{ID: sum.ID, Manifest: sum.Manifest, Totals: sum.Totals, Attempts: sum.Attempts})
		}
		if err := writeJSONStdout(map[string]any{"records": rows}); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat ledger:", err)
			return 1
		}
		return 0
	}

	if len(sums) == 0 {
		fmt.Println("run ledger is empty")
		return 0
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tFLOW\tSEED\tWARMTH\tATTEMPTS\tMEAS\tSIM(s)\tLAST RECORDED")
	for _, sum := range sums {
		last := "-"
		if n := sum.LastAttemptNano(); n > 0 {
			last = time.Unix(0, n).UTC().Format(time.RFC3339)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%d\t%d\t%.3f\t%s\n",
			sum.ID, sum.Manifest.Flow, sum.Manifest.Seed, sum.Manifest.CacheWarmth,
			len(sum.Attempts), sum.Totals.Measurements, sum.Totals.SimTimeSec, last)
	}
	w.Flush()
	return 0
}

// inspectRecord prints one record's manifest, artifact sizes and attempts.
func inspectRecord(st *runstore.Store, id string, asJSON bool) int {
	rec, err := st.Get(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat ledger:", err)
		return 1
	}
	attempts, err := st.Attempts(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat ledger:", err)
		return 1
	}
	if asJSON {
		out := map[string]any{
			"id":          id,
			"manifest":    rec.Manifest,
			"trace_bytes": len(rec.Trace),
			"attempts":    attempts,
		}
		if len(rec.Report) > 0 {
			out["report"] = json.RawMessage(rec.Report)
		}
		if err := writeJSONStdout(out); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat ledger:", err)
			return 1
		}
		return 0
	}
	fmt.Printf("record %s\n", id)
	fmt.Printf("  flow: %s  seed: %d  warmth: %s\n", rec.Manifest.Flow, rec.Manifest.Seed, rec.Manifest.CacheWarmth)
	fmt.Printf("  trace digest: %s  (%d trace bytes stored)\n", rec.Manifest.TraceDigest, len(rec.Trace))
	if totals, ok := rec.Totals(); ok {
		fmt.Printf("  totals: %d measurements, %d vectors, %.3f sim seconds\n",
			totals.Measurements, totals.Vectors, totals.SimTimeSec)
	}
	for name, val := range rec.Manifest.Flags {
		fmt.Printf("  flag -%s=%s\n", name, val)
	}
	for i, a := range attempts {
		fmt.Printf("  attempt %d: %s  parallel=%d scheduler=%s wall=%.3fs\n",
			i+1, time.Unix(0, a.TimeUnixNano).UTC().Format(time.RFC3339),
			a.Parallelism, a.Scheduler, a.WallSeconds)
	}
	return 0
}

// runRegress implements `tracestat regress rundir`: diff the ledger's newest
// record against a baseline with `tracestat diff` semantics. The baseline is
// -baseline ID when given, otherwise the oldest of the last -window records
// (a sliding drift window over recorded history). Exit codes: 0 clean (or
// fewer than two records), 1 regression past -fail-over or error, 2 usage.
func runRegress(args []string) int {
	fs := flag.NewFlagSet("tracestat regress", flag.ExitOnError)
	flow := fs.String("flow", "", "only consider records of this flow")
	baselineID := fs.String("baseline", "", "explicit baseline record ID (default: oldest record in the -window)")
	window := fs.Int("window", 2, "consider only the newest N records when picking the implicit baseline")
	failOver := fs.Float64("fail-over", 0, "exit nonzero when any label's measurements or sim time grew by at least this percent (0 = report only)")
	minMeas := fs.Int64("min-measurements", 50, "noise floor: labels below this measurement count on both sides never regress")
	failOnNew := fs.Bool("fail-on-new", false, "also fail on labels present only in the newest record")
	jsonOut := fs.Bool("json", false, "print the diff as JSON")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tracestat regress [flags] rundir\n")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	st, err := runstore.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat regress:", err)
		return 1
	}
	sums, err := st.List()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat regress:", err)
		return 1
	}
	if *flow != "" {
		kept := sums[:0]
		for _, sum := range sums {
			if sum.Manifest.Flow == *flow {
				kept = append(kept, sum)
			}
		}
		sums = kept
	}
	if len(sums) < 2 && *baselineID == "" || len(sums) == 0 {
		fmt.Printf("regress: %d record(s) in the ledger — nothing to compare yet\n", len(sums))
		return 0
	}

	latest := sums[len(sums)-1]
	var baseID string
	if *baselineID != "" {
		baseID = *baselineID
	} else {
		// The window is the newest N records; its oldest member is the
		// baseline, so drift accumulating over several runs is still caught.
		n := *window
		if n < 2 {
			n = 2
		}
		if n > len(sums) {
			n = len(sums)
		}
		baseID = sums[len(sums)-n].ID
	}
	if baseID == latest.ID {
		fmt.Printf("regress: baseline and latest are the same record %s — nothing to compare\n", baseID)
		return 0
	}

	baseTr, err := ledgerTrace(st, baseID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat regress:", err)
		return 1
	}
	newTr, err := ledgerTrace(st, latest.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat regress:", err)
		return 1
	}

	if !*jsonOut {
		fmt.Printf("regress: baseline %s -> latest %s\n", baseID, latest.ID)
	}
	d := obs.DiffTraces(baseTr, newTr, obs.DiffOptions{
		FailOverPct:     *failOver,
		MinMeasurements: *minMeas,
		FailOnNew:       *failOnNew,
	})
	if err := renderTraceDiff(d, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat regress:", err)
		return 1
	}
	if *failOver > 0 && len(d.Regressions()) > 0 {
		return 1
	}
	return 0
}

// ledgerTrace loads and parses one record's stored trace.
func ledgerTrace(st *runstore.Store, id string) (*obs.Trace, error) {
	rec, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	if len(rec.Trace) == 0 {
		return nil, fmt.Errorf("record %s has no stored trace", id)
	}
	return obs.ParseTrace(bytes.NewReader(rec.Trace))
}

func writeJSONStdout(v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = os.Stdout.Write(raw)
	return err
}
