// tracestat analyzes the JSONL trace files the pipeline binaries emit via
// -trace: per-phase cost rollups, a critical-path summary, optional Chrome
// trace-event export for chrome://tracing / Perfetto, and run-over-run
// regression comparison for both traces and the repo's BENCH_*.json files.
//
// Usage:
//
//	tracestat run.jsonl
//	tracestat -top 5 run.jsonl
//	tracestat -chrome run.chrome.json run.jsonl
//	tracestat diff [-fail-over 20] [-min-measurements 50] [-fail-on-new] [-json] old.jsonl new.jsonl
//	tracestat benchdiff [-fail-over 20] [-time] [-json] baseline.json current.json
//	tracestat ledger [-flow NAME] [-id RUNID] [-json] rundir
//	tracestat regress [-flow NAME] [-baseline RUNID] [-window 2] [-fail-over 20] [-json] rundir
//
// Traces carry no wall-clock time (the determinism contract), so the
// rollups rank by deterministic simulated tester seconds, the Chrome export
// uses sequence numbers as microsecond ticks, and `diff` compares logical
// costs exactly: two runs of the same workload diff to zero, and any
// growth past -fail-over percent exits nonzero (a CI regression gate).
// `benchdiff` gates counter-style benchmark metrics (allocs, measurements,
// hit rates) against a committed baseline; wall-clock metrics are skipped
// unless -time opts them in.
//
// `ledger` lists or inspects a -run-dir run ledger (internal/runstore);
// `regress` diffs the ledger's newest record against a baseline record (an
// explicit -baseline ID, or the oldest of the last -window records) with
// the same gating semantics as `diff` — a drift gate over recorded history
// instead of two loose trace files.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	// Subcommand dispatch: "diff" and "benchdiff" own their flag sets; the
	// bare invocation keeps the original single-trace analysis interface.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "diff":
			os.Exit(runDiff(os.Args[2:]))
		case "benchdiff":
			os.Exit(runBenchDiff(os.Args[2:]))
		case "ledger":
			os.Exit(runLedger(os.Args[2:]))
		case "regress":
			os.Exit(runRegress(os.Args[2:]))
		}
	}

	top := flag.Int("top", 20, "rollup rows to print (0 = all)")
	chrome := flag.String("chrome", "", "write Chrome trace-event JSON to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracestat [flags] trace.jsonl\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       tracestat diff [flags] old.jsonl new.jsonl\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       tracestat benchdiff [flags] baseline.json current.json\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       tracestat ledger [flags] rundir\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       tracestat regress [flags] rundir\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if err := run(flag.Arg(0), *top, *chrome); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run(path string, top int, chromePath string) error {
	tr, err := parseTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Print(tr.Summary(top))

	if chromePath != "" {
		out, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(out, tr); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("\nchrome trace: %s (load at chrome://tracing or ui.perfetto.dev)\n", chromePath)
	}
	return nil
}

// runDiff implements `tracestat diff old.jsonl new.jsonl`. Exit codes: 0
// clean, 1 regression found (or I/O error), 2 usage.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("tracestat diff", flag.ExitOnError)
	failOver := fs.Float64("fail-over", 0, "exit nonzero when any label's measurements or sim time grew by at least this percent (0 = report only)")
	minMeas := fs.Int64("min-measurements", 50, "noise floor: labels below this measurement count on both sides never regress")
	failOnNew := fs.Bool("fail-on-new", false, "also fail on labels present only in the new trace")
	jsonOut := fs.Bool("json", false, "print the diff as JSON (the same schema the admin server's /runs/diff serves)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tracestat diff [flags] old.jsonl new.jsonl\n")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	oldTr, err := parseTraceFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat diff:", err)
		return 1
	}
	newTr, err := parseTraceFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat diff:", err)
		return 1
	}

	d := obs.DiffTraces(oldTr, newTr, obs.DiffOptions{
		FailOverPct:     *failOver,
		MinMeasurements: *minMeas,
		FailOnNew:       *failOnNew,
	})
	if err := renderTraceDiff(d, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat diff:", err)
		return 1
	}
	if *failOver > 0 && len(d.Regressions()) > 0 {
		return 1
	}
	return 0
}

// runBenchDiff implements `tracestat benchdiff baseline.json current.json`.
// Exit codes: 0 clean, 1 regression or missing benchmark (or I/O error),
// 2 usage.
func runBenchDiff(args []string) int {
	fs := flag.NewFlagSet("tracestat benchdiff", flag.ExitOnError)
	failOver := fs.Float64("fail-over", 20, "exit nonzero when any gated metric worsened by at least this percent (0 = report only)")
	includeTime := fs.Bool("time", false, "also gate wall-clock metrics (ns_per_op, dies_per_sec); off by default because they track the machine, not the code")
	jsonOut := fs.Bool("json", false, "print the diff as JSON")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tracestat benchdiff [flags] baseline.json current.json\n")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	baseline, err := parseBenchFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat benchdiff:", err)
		return 1
	}
	current, err := parseBenchFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat benchdiff:", err)
		return 1
	}

	d := obs.DiffBench(baseline, current, obs.BenchDiffOptions{
		FailOverPct:      *failOver,
		IncludeTimeBased: *includeTime,
	})
	var renderErr error
	if *jsonOut {
		renderErr = d.WriteJSON(os.Stdout)
	} else {
		renderErr = d.Render(os.Stdout)
	}
	if renderErr != nil {
		fmt.Fprintln(os.Stderr, "tracestat benchdiff:", renderErr)
		return 1
	}
	if *failOver > 0 && d.Failed() {
		return 1
	}
	return 0
}

func parseTraceFile(path string) (*obs.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ParseTrace(f)
}

func parseBenchFile(path string) ([]obs.BenchEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ParseBenchJSON(f)
}
