// tracestat analyzes the JSONL trace files the pipeline binaries emit via
// -trace: per-phase cost rollups, a critical-path summary, and optional
// Chrome trace-event export for chrome://tracing / Perfetto.
//
// Usage:
//
//	tracestat run.jsonl
//	tracestat -top 5 run.jsonl
//	tracestat -chrome run.chrome.json run.jsonl
//
// Traces carry no wall-clock time (the determinism contract), so the
// rollups rank by deterministic simulated tester seconds and the Chrome
// export uses sequence numbers as microsecond ticks.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	top := flag.Int("top", 20, "rollup rows to print (0 = all)")
	chrome := flag.String("chrome", "", "write Chrome trace-event JSON to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracestat [flags] trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if err := run(flag.Arg(0), *top, *chrome); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run(path string, top int, chromePath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	tr, err := obs.ParseTrace(f)
	if err != nil {
		return err
	}
	fmt.Print(tr.Summary(top))

	if chromePath != "" {
		out, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(out, tr); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("\nchrome trace: %s (load at chrome://tracing or ui.perfetto.dev)\n", chromePath)
	}
	return nil
}
