// Command lotchar completes the characterization methodology of §1: it
// takes the worst-case tests found by the CI flow (plus a March baseline),
// screens them across a statistically significant sample of dies, and
// extracts the final device specification over the environmental grid —
// "every combination of two or more environmental variables".
//
// Usage:
//
//	lotchar -db worst.json -dies 25
//	lotchar -dies 10 -guardband 0.08        # built-in worst-case pattern
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ate"
	"repro/internal/charspec"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lotchar: ")

	common := cli.Register(nil)
	var (
		dbPath    = flag.String("db", "", "worst-case database from 'characterize -db' (optional)")
		dies      = flag.Int("dies", 20, "number of dies in the sample lot")
		guardband = flag.Float64("guardband", 0.05, "spec extraction guardband fraction")
	)
	flag.Parse()
	seed, sites := &common.Seed, &common.Parallel

	stopProfiles, profErr := common.StartProfiles()
	if profErr != nil {
		log.Fatal(profErr)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	tel, telErr := common.StartTelemetry("lotchar")
	if telErr != nil {
		log.Fatal(telErr)
	}

	geom := dut.DefaultGeometry()
	cond := testgen.NominalConditions()

	// Assemble the screened test set: the database tests (or a built-in
	// coordinated worst-case pattern) plus a March C- baseline.
	var tests []testgen.Test
	if *dbPath != "" {
		db, err := core.LoadDatabaseFile(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		for i, e := range db.Entries {
			if i >= 5 {
				break // the five worst are plenty for a lot screen
			}
			tests = append(tests, e.Test)
		}
		fmt.Printf("loaded %d worst-case tests from %s\n", len(tests), *dbPath)
	} else {
		words := geom.Words()
		seq := make(testgen.Sequence, 0, 800)
		for i := 0; i < 200; i++ {
			base := uint32(0)
			if i%2 == 1 {
				base = words - 2
			}
			seq = append(seq,
				testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
				testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
			)
		}
		tests = append(tests, testgen.Test{Name: "WORST-BUILTIN", Seq: seq, Cond: cond})
		fmt.Println("no database given; using the built-in coordinated worst-case pattern")
	}
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, cond)
	if err != nil {
		log.Fatal(err)
	}
	tests = append(tests, march)

	// --- Lot screen -------------------------------------------------------
	lot := dut.NewDieLot(*seed, *dies)
	rep, err := core.ScreenLotParallelTel(ate.TDQ, tests, lot, geom, *seed, *sites, tel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Format())

	// --- Spec extraction on the worst die ---------------------------------
	var worstDie *dut.Die
	for _, d := range lot {
		if d.ID == rep.WorstDie.DieID {
			worstDie = d
			break
		}
	}
	dev, err := dut.NewDevice(geom, worstDie)
	if err != nil {
		log.Fatal(err)
	}
	tester := ate.New(dev, *seed+999)
	cfg := charspec.DefaultConfig()
	cfg.Guardband = *guardband
	ph := tel.StartPhase("spec-extract")
	spec, err := charspec.Extract(tester, ate.TDQ, tests, cfg)
	ph.End(cli.Cost(tester.Stats()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("environmental sweep on the worst die (#%d, %s):\n", worstDie.ID, worstDie.Corner)
	fmt.Print(spec.Format())

	total := rep.Stats
	total.Add(tester.Stats())
	if err := common.FinishTelemetry(os.Stdout, tel, total); err != nil {
		log.Fatal(err)
	}
}
