// Command lotchar completes the characterization methodology of §1: it
// takes the worst-case tests found by the CI flow (plus a March baseline),
// screens them across a statistically significant sample of dies, and
// extracts the final device specification over the environmental grid —
// "every combination of two or more environmental variables".
//
// Usage:
//
//	lotchar -db worst.json -dies 25
//	lotchar -dies 10 -guardband 0.08        # built-in worst-case pattern
//	lotchar -wafers 4 -dies 2500 -cache-dir /tmp/lotcache   # fab-scale, persisted
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/ate"
	"repro/internal/cachestore"
	"repro/internal/charspec"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/testgen"
)

// printLotCost prints the one-line lot cost summary: throughput, total
// ATE measurements, and disk-cache effectiveness when a store is attached.
func printLotCost(rep *core.LotReport, store *cachestore.Store, wallSec float64) {
	dps := 0.0
	if wallSec > 0 {
		dps = float64(rep.DieCount) / wallSec
	}
	line := fmt.Sprintf("lot cost: %d dies in %.2fs (%.1f dies/sec), %d ATE measurements",
		rep.DieCount, wallSec, dps, rep.Measurements)
	if store != nil {
		st := store.Stats()
		line += fmt.Sprintf(", disk cache hit rate %.1f%% (%d/%d, %d bytes on disk)",
			100*telemetry.HitRate(st.Hits, st.Misses), st.Hits, st.Hits+st.Misses, st.BytesOnDisk)
	}
	fmt.Println(line)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lotchar: ")

	common := cli.Register(nil)
	var (
		dbPath    = flag.String("db", "", "worst-case database from 'characterize -db' (optional)")
		dies      = flag.Int("dies", 20, "number of dies in the sample lot (with -wafers: dies per wafer)")
		wafers    = flag.Int("wafers", 0, "screen a wafer lot with spatially structured process variation (0 = flat i.i.d. lot)")
		guardband = flag.Float64("guardband", 0.05, "spec extraction guardband fraction")
	)
	flag.Parse()
	common.Main(func() (err error) {
		seed, sites := &common.Seed, &common.Parallel
		if *dies < 1 {
			return fmt.Errorf("-dies must be at least 1, got %d", *dies)
		}
		if *wafers < 0 {
			return fmt.Errorf("-wafers must not be negative, got %d", *wafers)
		}

		stopProfiles, err := common.StartProfiles()
		if err != nil {
			return err
		}
		defer func() {
			if perr := stopProfiles(); perr != nil && err == nil {
				err = perr
			}
		}()

		tel, err := common.StartTelemetry("lotchar")
		if err != nil {
			return err
		}

		geom := dut.DefaultGeometry()
		cond := testgen.NominalConditions()

		// Assemble the screened test set: the database tests (or a built-in
		// coordinated worst-case pattern) plus a March C- baseline.
		var tests []testgen.Test
		if *dbPath != "" {
			db, err := core.LoadDatabaseFile(*dbPath)
			if err != nil {
				return err
			}
			for i, e := range db.Entries {
				if i >= 5 {
					break // the five worst are plenty for a lot screen
				}
				tests = append(tests, e.Test)
			}
			fmt.Printf("loaded %d worst-case tests from %s\n", len(tests), *dbPath)
		} else {
			words := geom.Words()
			seq := make(testgen.Sequence, 0, 800)
			for i := 0; i < 200; i++ {
				base := uint32(0)
				if i%2 == 1 {
					base = words - 2
				}
				seq = append(seq,
					testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
					testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
				)
			}
			tests = append(tests, testgen.Test{Name: "WORST-BUILTIN", Seq: seq, Cond: cond})
			fmt.Println("no database given; using the built-in coordinated worst-case pattern")
		}
		march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, cond)
		if err != nil {
			return err
		}
		tests = append(tests, march)

		// --- Lot screen ---------------------------------------------------
		// Flat lots keep the legacy i.i.d. sample; -wafers switches to the
		// spatial wafer model. Either way the dies stream through the bounded
		// pipeline — per-die results are not retained, so lot size no longer
		// bounds memory.
		var src dut.DieSource
		if *wafers > 0 {
			wl, err := dut.NewWaferLot(*seed, *wafers, *dies)
			if err != nil {
				return err
			}
			src = wl
		} else {
			src = dut.LotSlice(dut.NewDieLot(*seed, *dies))
		}
		store, err := common.OpenCacheStore(core.LotCacheScope)
		if err != nil {
			return err
		}
		lotOpts := core.LotOptions{
			Workers:   *sites,
			Cache:     store,
			Telemetry: tel,
		}
		if common.Scheduler != "batch" {
			f := parallel.NewFleet(parallel.Bound(*sites, src.Len()))
			defer f.Close()
			lotOpts.Fleet = f
		}
		screenStart := time.Now()
		rep, err := core.ScreenLotStream(ate.TDQ, tests, src, geom, *seed, lotOpts)
		if err != nil {
			return err
		}
		screenWall := time.Since(screenStart).Seconds()
		fmt.Println()
		fmt.Print(rep.Format())
		printLotCost(rep, store, screenWall)

		// --- Spec extraction on the worst die -----------------------------
		var worstDie *dut.Die
		for i := 0; i < src.Len(); i++ {
			if d := src.Die(i); d.ID == rep.WorstDie.DieID {
				worstDie = d
				break
			}
		}
		dev, err := dut.NewDevice(geom, worstDie)
		if err != nil {
			return err
		}
		tester := ate.New(dev, *seed+999)
		cfg := charspec.DefaultConfig()
		cfg.Guardband = *guardband
		ph := tel.StartPhase("spec-extract")
		spec, err := charspec.Extract(tester, ate.TDQ, tests, cfg)
		ph.End(cli.Cost(tester.Stats()))
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Printf("environmental sweep on the worst die (#%d, %s):\n", worstDie.ID, worstDie.Corner)
		fmt.Print(spec.Format())

		total := rep.Stats
		total.Add(tester.Stats())
		return common.FinishTelemetry(os.Stdout, tel, total)
	})
}
