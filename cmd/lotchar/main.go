// Command lotchar completes the characterization methodology of §1: it
// takes the worst-case tests found by the CI flow (plus a March baseline),
// screens them across a statistically significant sample of dies, and
// extracts the final device specification over the environmental grid —
// "every combination of two or more environmental variables".
//
// The flow body lives in internal/cli (RunLot) so the charserved job
// service executes the identical code path.
//
// Usage:
//
//	lotchar -db worst.json -dies 25
//	lotchar -dies 10 -guardband 0.08        # built-in worst-case pattern
//	lotchar -wafers 4 -dies 2500 -cache-dir /tmp/lotcache   # fab-scale, persisted
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lotchar: ")

	common := cli.Register(nil)
	flags := cli.RegisterLotFlags(flag.CommandLine)
	flag.Parse()

	common.Main(func() error {
		return cli.RunLot(common, flags, os.Stdout)
	})
}
