// Command shmoo regenerates the fig. 8 overlay shmoo plot: many random
// tests swept over supply voltage (Y) and the T_DQ strobe (X) in a single
// plot, so the test-dependent trip point variation shows up as a partial
// pass band between the all-pass and any-pass boundaries.
//
// The flow body lives in internal/cli (RunShmoo) so the charserved job
// service executes the identical code path.
//
// Usage:
//
//	shmoo -tests 1000                 # the paper's 1000-test overlay
//	shmoo -tests 100 -db worst.json   # overlay a saved worst-case database
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shmoo: ")

	common := cli.Register(nil)
	flags := cli.RegisterShmooFlags(flag.CommandLine)
	flag.Parse()

	common.Main(func() error {
		return cli.RunShmoo(common, flags, os.Stdout)
	})
}
