// Command shmoo regenerates the fig. 8 overlay shmoo plot: many random
// tests swept over supply voltage (Y) and the T_DQ strobe (X) in a single
// plot, so the test-dependent trip point variation shows up as a partial
// pass band between the all-pass and any-pass boundaries.
//
// Usage:
//
//	shmoo -tests 1000                 # the paper's 1000-test overlay
//	shmoo -tests 100 -db worst.json   # overlay a saved worst-case database
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ate"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/parallel"
	"repro/internal/shmoo"
	"repro/internal/telemetry"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shmoo: ")

	common := cli.Register(nil)
	var (
		tests  = flag.Int("tests", 1000, "number of random tests to overlay")
		dbPath = flag.String("db", "", "also overlay the tests of this worst-case database")
		vddMin = flag.Float64("vdd-min", 1.4, "Y axis lower bound (V)")
		vddMax = flag.Float64("vdd-max", 2.2, "Y axis upper bound (V)")
		xMin   = flag.Float64("tdq-min", 18, "X axis lower bound (ns)")
		xMax   = flag.Float64("tdq-max", 36, "X axis upper bound (ns)")
	)
	flag.Parse()
	common.Main(func() (err error) {
		seed, par := &common.Seed, &common.Parallel

		stopProfiles, err := common.StartProfiles()
		if err != nil {
			return err
		}
		defer func() {
			if perr := stopProfiles(); perr != nil && err == nil {
				err = perr
			}
		}()

		dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
		if err != nil {
			return err
		}
		tester := ate.New(dev, *seed)
		tel, err := common.StartTelemetry("shmoo")
		if err != nil {
			return err
		}
		cond := testgen.NominalConditions()
		gen := testgen.NewRandomGenerator(*seed+1, dev.Geometry().Words(), testgen.DefaultConditionLimits())
		gen.FixedConditions = &cond

		x := shmoo.DefaultTDQAxis()
		x.Min, x.Max = *xMin, *xMax
		y := shmoo.DefaultVddAxis()
		y.Min, y.Max = *vddMin, *vddMax

		plot, err := shmoo.NewPlot(x, y)
		if err != nil {
			return err
		}
		batch := gen.Batch(*tests)
		if *dbPath != "" {
			db, err := core.LoadDatabaseFile(*dbPath)
			if err != nil {
				return err
			}
			for _, e := range db.Entries {
				batch = append(batch, e.Test)
			}
			fmt.Printf("overlaying %d database tests on top of %d random tests\n", db.Len(), *tests)
		}
		ph := tel.StartPhase("shmoo-overlay")
		sweep := ph.Span()
		plot.OnTest = func(index int, cost ate.Stats) {
			sweep.Event("test", telemetry.I("i", index),
				telemetry.I("measurements", cost.Measurements),
				telemetry.I("vectors", cost.VectorsApplied))
			tel.RecordItem("shmoo-test", index+1, len(batch))
		}
		if common.Scheduler == "batch" {
			if err := plot.AddTestsParallel(tester, batch, *seed, *par); err != nil {
				return err
			}
		} else {
			f := parallel.NewFleet(parallel.Bound(*par, len(batch)))
			defer f.Close()
			if err := plot.AddTestsOn(f, tester, batch, *seed); err != nil {
				return err
			}
		}
		plot.OnTest = nil
		ph.End(cli.Cost(tester.Stats()))

		fmt.Print(plot.Render())
		fmt.Printf("worst-case trip point variation: %.2f ns\n", plot.WorstCaseVariation())
		allPass, anyPass, ok := plot.BoundarySpread(plot.Y.Steps / 2)
		if ok {
			fmt.Printf("at mid supply: all tests pass up to %.2f ns, some up to %.2f ns\n", allPass, anyPass)
		}
		s := tester.Stats()
		fmt.Printf("tester: %d measurements, %.1f s simulated test time\n", s.Measurements, s.TestTimeSec)
		return common.FinishTelemetry(os.Stdout, tel, s)
	})
}
