#!/bin/sh
# CI gate for the repo: static checks, the race-enabled test suite, a
# telemetry-enabled smoke run (with a trace-determinism diff), and short
# benchmark passes that record the perf trajectory in BENCH_parallel.json
# (fig. 5 + Table 1 ns/op and measurement counts), BENCH_obs.json
# (instrumented-flow ns/op, cache hit rate, measurements per op) and
# BENCH_kernels.json (neural kernel ns/op, B/op and allocs/op). The kernel
# pass is also a hard gate: allocs/op above the pinned ceilings fails CI so
# allocation regressions in the zero-allocation hot path cannot land
# silently.
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...

echo "== telemetry smoke run =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
go run ./cmd/characterize -learn-tests 20 -parallel 1 -report \
	-trace "$SMOKE_DIR/p1.jsonl" -metrics "$SMOKE_DIR/metrics.json" > "$SMOKE_DIR/report.txt"
go run ./cmd/characterize -learn-tests 20 -parallel 4 \
	-trace "$SMOKE_DIR/p4.jsonl" > /dev/null
cmp "$SMOKE_DIR/p1.jsonl" "$SMOKE_DIR/p4.jsonl" || {
	echo "FAIL: telemetry trace differs between -parallel 1 and -parallel 4" >&2
	exit 1
}
grep -q "run report: characterize" "$SMOKE_DIR/report.txt" || {
	echo "FAIL: smoke run produced no run report" >&2
	exit 1
}
echo "trace deterministic across worker counts ($(wc -l < "$SMOKE_DIR/p1.jsonl") events); report and metrics written"

echo "== live observability smoke run =="
go build -o "$SMOKE_DIR/characterize" ./cmd/characterize
"$SMOKE_DIR/characterize" -learn-tests 20 -parallel 4 -listen 127.0.0.1:0 \
	-trace "$SMOKE_DIR/plisten.jsonl" > /dev/null 2> "$SMOKE_DIR/obs.stderr" &
OBS_PID=$!
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's#^obs: serving http://\([^/]*\)/.*#\1#p' "$SMOKE_DIR/obs.stderr")
	[ -n "$ADDR" ] && break
	kill -0 "$OBS_PID" 2> /dev/null || break
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "FAIL: characterize -listen never announced its address" >&2
	cat "$SMOKE_DIR/obs.stderr" >&2
	exit 1
fi
curl -sf "http://$ADDR/healthz" > /dev/null || {
	echo "FAIL: /healthz not answering on $ADDR" >&2
	exit 1
}
SCRAPED=""
while kill -0 "$OBS_PID" 2> /dev/null; do
	if curl -sf "http://$ADDR/metrics" > "$SMOKE_DIR/scrape.prom" 2> /dev/null \
		&& grep -Eq '^repro_search_total\{[^}]*\} [1-9]' "$SMOKE_DIR/scrape.prom"; then
		SCRAPED=yes
		break
	fi
	sleep 0.1
done
if [ -z "$SCRAPED" ]; then
	echo "FAIL: never scraped a nonzero repro_search_total from the live /metrics" >&2
	exit 1
fi
wait "$OBS_PID" || {
	echo "FAIL: characterize -listen exited nonzero" >&2
	cat "$SMOKE_DIR/obs.stderr" >&2
	exit 1
}
cmp "$SMOKE_DIR/plisten.jsonl" "$SMOKE_DIR/p1.jsonl" || {
	echo "FAIL: -listen changed the telemetry trace bytes" >&2
	exit 1
}
echo "live /metrics scraped on $ADDR; trace bit-identical with -listen on"

echo "== tracestat =="
go run ./cmd/tracestat -chrome "$SMOKE_DIR/p1.chrome.json" "$SMOKE_DIR/p1.jsonl" > "$SMOKE_DIR/tracestat.txt"
grep -q "critical path" "$SMOKE_DIR/tracestat.txt" || {
	echo "FAIL: tracestat produced no critical-path summary" >&2
	cat "$SMOKE_DIR/tracestat.txt" >&2
	exit 1
}
grep -q '"traceEvents"' "$SMOKE_DIR/p1.chrome.json" || {
	echo "FAIL: tracestat -chrome wrote no trace-event JSON" >&2
	exit 1
}
echo "tracestat rollups and Chrome export OK"

echo "== benchmarks =="
BENCH_OUT=$(go test -run '^$' \
	-bench '^(BenchmarkFigure5OptimizationScheme|BenchmarkTable1FullComparison)$' \
	-benchtime 1x -timeout 60m .)
printf '%s\n' "$BENCH_OUT"
printf '%s\n' "$BENCH_OUT" | awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; meas = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "measurements") meas = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"ate_measurements\": %s}", name, ns, meas
	}
	BEGIN { printf "[\n" }
	END   { printf "\n]\n" }
' > BENCH_parallel.json
echo "wrote BENCH_parallel.json:"
cat BENCH_parallel.json

echo "== observability benchmark =="
OBS_OUT=$(go test -run '^$' \
	-bench '^BenchmarkObservabilityInstrumentedFlow$' \
	-benchtime 1x -timeout 60m .)
printf '%s\n' "$OBS_OUT"
printf '%s\n' "$OBS_OUT" | awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; meas = "null"; rate = "null"; saved = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "measurements") meas = $(i - 1)
			if ($i == "cache_hit_rate") rate = $(i - 1)
			if ($i == "measurements_saved") saved = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"cache_hit_rate\": %s, \"ate_measurements\": %s, \"measurements_saved\": %s}", name, ns, rate, meas, saved
	}
	BEGIN { printf "[\n" }
	END   { printf "\n]\n" }
' > BENCH_obs.json
echo "wrote BENCH_obs.json:"
cat BENCH_obs.json

echo "== kernel benchmarks (allocation gate) =="
# Ceilings sit ~3x above the steady-state numbers measured after the
# zero-allocation kernel rewrite (train 30, ensemble-predict 97,
# batch-predict 4 allocs/op); the pre-rewrite path ran at 25661 and 1632.
KERNELS_OUT=$(go test -run '^$' \
	-bench '^BenchmarkLearningKernels$' \
	-benchmem -benchtime 20x -timeout 10m .)
printf '%s\n' "$KERNELS_OUT"
printf '%s\n' "$KERNELS_OUT" | awk '
	BEGIN {
		printf "[\n"
		ceiling["BenchmarkLearningKernels/train"] = 100
		ceiling["BenchmarkLearningKernels/ensemble-predict"] = 300
		ceiling["BenchmarkLearningKernels/batch-predict"] = 16
		fail = 0
	}
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; bytes = "null"; allocs = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "B/op") bytes = $(i - 1)
			if ($i == "allocs/op") allocs = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
		if (name in ceiling && allocs != "null" && allocs + 0 > ceiling[name]) {
			printf "FAIL: %s allocs/op = %s exceeds ceiling %d\n", name, allocs, ceiling[name] > "/dev/stderr"
			fail = 1
		}
	}
	END {
		printf "\n]\n"
		exit fail
	}
' > BENCH_kernels.json
echo "wrote BENCH_kernels.json:"
cat BENCH_kernels.json
