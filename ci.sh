#!/bin/sh
# CI gate for the repo: static checks, the race-enabled test suite, and a
# short benchmark pass that records the perf trajectory in
# BENCH_parallel.json (ns/op and ATE measurement counts for the fig. 5
# optimization scheme and the Table 1 comparison).
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...

echo "== benchmarks =="
BENCH_OUT=$(go test -run '^$' \
	-bench '^(BenchmarkFigure5OptimizationScheme|BenchmarkTable1FullComparison)$' \
	-benchtime 1x -timeout 60m .)
printf '%s\n' "$BENCH_OUT"
printf '%s\n' "$BENCH_OUT" | awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; meas = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "measurements") meas = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"ate_measurements\": %s}", name, ns, meas
	}
	BEGIN { printf "[\n" }
	END   { printf "\n]\n" }
' > BENCH_parallel.json
echo "wrote BENCH_parallel.json:"
cat BENCH_parallel.json
