#!/bin/sh
# CI gate for the repo: static checks, the race-enabled test suite,
# per-package coverage floors, a fuzz smoke pass over the native fuzz
# targets, a telemetry-enabled smoke run (with a trace-determinism diff),
# and short
# benchmark passes that record the perf trajectory in BENCH_parallel.json
# (fig. 5 + Table 1 ns/op and measurement counts, plus the fleet-vs-batch
# scheduling ladder, whose >= 1.25x fleet speedup is a hard gate), BENCH_obs.json
# (instrumented-flow ns/op, cache hit rate, measurements per op) and
# BENCH_kernels.json (neural kernel ns/op, B/op and allocs/op) and
# BENCH_lot.json (streamed lot screening dies/sec across the worker ladder,
# disk cache cold/warm). The kernel and lot passes are also hard gates:
# allocs/op above the pinned ceilings, a streamed lot slower than 2x the
# per-die loop, or a warm-cache run serving under 50% of dies from disk all
# fail CI, so regressions in the hot paths cannot land silently.
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...

echo "== coverage floors =="
# Per-package statement-coverage floors, pinned ~10 points under the levels
# measured when the invariant harness landed, so a PR that deletes or skips
# tests fails loudly while normal refactoring has headroom. Raise a floor
# when a package's coverage durably improves; never lower one to make CI
# pass.
COVER_TXT=$(mktemp)
go test -count=1 -cover ./internal/... > "$COVER_TXT" || {
	cat "$COVER_TXT" >&2
	rm -f "$COVER_TXT"
	exit 1
}
cat "$COVER_TXT"
awk '
	BEGIN {
		floor["repro/internal/ate"] = 80
		floor["repro/internal/cachestore"] = 80
		floor["repro/internal/charspec"] = 80
		floor["repro/internal/cli"] = 70
		floor["repro/internal/core"] = 80
		floor["repro/internal/dut"] = 85
		floor["repro/internal/fuzzy"] = 80
		floor["repro/internal/genetic"] = 85
		floor["repro/internal/jobs"] = 65
		floor["repro/internal/neural"] = 80
		floor["repro/internal/obs"] = 80
		floor["repro/internal/parallel"] = 85
		floor["repro/internal/pdn"] = 85
		floor["repro/internal/proptest"] = 60
		floor["repro/internal/runstore"] = 80
		floor["repro/internal/search"] = 80
		floor["repro/internal/shmoo"] = 80
		floor["repro/internal/telemetry"] = 80
		floor["repro/internal/telemetry/flight"] = 85
		floor["repro/internal/testgen"] = 85
		floor["repro/internal/trippoint"] = 80
		floor["repro/internal/wcr"] = 90
		fail = 0
	}
	$1 == "ok" && $2 in floor {
		seen[$2] = 1
		for (i = 3; i <= NF; i++) {
			if ($i ~ /^[0-9.]+%$/) {
				pct = $i; sub(/%/, "", pct)
				if (pct + 0 < floor[$2]) {
					printf "FAIL: %s coverage %.1f%% below floor %d%%\n", $2, pct, floor[$2] > "/dev/stderr"
					fail = 1
				}
			}
		}
	}
	END {
		for (pkg in floor) {
			if (!(pkg in seen)) {
				printf "FAIL: no coverage result for %s (package removed or tests failed)\n", pkg > "/dev/stderr"
				fail = 1
			}
		}
		exit fail
	}
' "$COVER_TXT" || { rm -f "$COVER_TXT"; exit 1; }
rm -f "$COVER_TXT"
echo "all per-package coverage floors hold"

echo "== fuzz smoke (10s per target) =="
# Each native fuzz target runs briefly against its committed seed corpus
# plus fresh mutations. A crasher here means a parser or search-bounds
# invariant broke; reproduce with the corpus file Go writes to
# testdata/fuzz/<Target>/.
go test -run '^$' -fuzz '^FuzzSUTPBounds$' -fuzztime 10s ./internal/search/
go test -run '^$' -fuzz '^FuzzWeightFileParse$' -fuzztime 10s ./internal/neural/
go test -run '^$' -fuzz '^FuzzTraceParse$' -fuzztime 10s ./internal/obs/
go test -run '^$' -fuzz '^FuzzPromEncode$' -fuzztime 10s ./internal/obs/
echo "all fuzz targets clean"

echo "== telemetry smoke run =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
go run ./cmd/characterize -learn-tests 20 -parallel 1 -report \
	-trace "$SMOKE_DIR/p1.jsonl" -metrics "$SMOKE_DIR/metrics.json" > "$SMOKE_DIR/report.txt"
go run ./cmd/characterize -learn-tests 20 -parallel 4 \
	-trace "$SMOKE_DIR/p4.jsonl" > /dev/null
cmp "$SMOKE_DIR/p1.jsonl" "$SMOKE_DIR/p4.jsonl" || {
	echo "FAIL: telemetry trace differs between -parallel 1 and -parallel 4" >&2
	exit 1
}
grep -q "run report: characterize" "$SMOKE_DIR/report.txt" || {
	echo "FAIL: smoke run produced no run report" >&2
	exit 1
}
echo "trace deterministic across worker counts ($(wc -l < "$SMOKE_DIR/p1.jsonl") events); report and metrics written"

echo "== live observability smoke run =="
go build -o "$SMOKE_DIR/characterize" ./cmd/characterize
"$SMOKE_DIR/characterize" -learn-tests 20 -parallel 4 -listen 127.0.0.1:0 \
	-trace "$SMOKE_DIR/plisten.jsonl" > /dev/null 2> "$SMOKE_DIR/obs.stderr" &
OBS_PID=$!
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's#^obs: serving http://\([^/]*\)/.*#\1#p' "$SMOKE_DIR/obs.stderr")
	[ -n "$ADDR" ] && break
	kill -0 "$OBS_PID" 2> /dev/null || break
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "FAIL: characterize -listen never announced its address" >&2
	cat "$SMOKE_DIR/obs.stderr" >&2
	exit 1
fi
curl -sf "http://$ADDR/healthz" > /dev/null || {
	echo "FAIL: /healthz not answering on $ADDR" >&2
	exit 1
}
SCRAPED=""
while kill -0 "$OBS_PID" 2> /dev/null; do
	if curl -sf "http://$ADDR/metrics" > "$SMOKE_DIR/scrape.prom" 2> /dev/null \
		&& grep -Eq '^repro_search_total\{[^}]*\} [1-9]' "$SMOKE_DIR/scrape.prom"; then
		SCRAPED=yes
		break
	fi
	sleep 0.1
done
if [ -z "$SCRAPED" ]; then
	echo "FAIL: never scraped a nonzero repro_search_total from the live /metrics" >&2
	exit 1
fi
wait "$OBS_PID" || {
	echo "FAIL: characterize -listen exited nonzero" >&2
	cat "$SMOKE_DIR/obs.stderr" >&2
	exit 1
}
cmp "$SMOKE_DIR/plisten.jsonl" "$SMOKE_DIR/p1.jsonl" || {
	echo "FAIL: -listen changed the telemetry trace bytes" >&2
	exit 1
}
echo "live /metrics scraped on $ADDR; trace bit-identical with -listen on"

echo "== tracestat =="
go run ./cmd/tracestat -chrome "$SMOKE_DIR/p1.chrome.json" "$SMOKE_DIR/p1.jsonl" > "$SMOKE_DIR/tracestat.txt"
grep -q "critical path" "$SMOKE_DIR/tracestat.txt" || {
	echo "FAIL: tracestat produced no critical-path summary" >&2
	cat "$SMOKE_DIR/tracestat.txt" >&2
	exit 1
}
grep -q '"traceEvents"' "$SMOKE_DIR/p1.chrome.json" || {
	echo "FAIL: tracestat -chrome wrote no trace-event JSON" >&2
	exit 1
}
echo "tracestat rollups and Chrome export OK"

echo "== tracestat diff regression gate =="
# Self-check both directions of the gate. Identical workloads (the -parallel
# 1 and 4 smoke traces are byte-identical) must diff clean; a deliberately
# fatter learning phase (26 tests vs 20 is +30% work, past the 20% gate with
# the noise floor lowered to cover the small smoke run) must exit nonzero.
go run ./cmd/tracestat diff -fail-over 20 "$SMOKE_DIR/p1.jsonl" "$SMOKE_DIR/p4.jsonl" || {
	echo "FAIL: tracestat diff flagged a regression between identical traces" >&2
	exit 1
}
go run ./cmd/characterize -learn-tests 26 -parallel 4 \
	-trace "$SMOKE_DIR/p26.jsonl" > /dev/null
if go run ./cmd/tracestat diff -fail-over 20 -min-measurements 10 \
	"$SMOKE_DIR/p1.jsonl" "$SMOKE_DIR/p26.jsonl" > "$SMOKE_DIR/diff26.txt"; then
	echo "FAIL: tracestat diff missed an injected +30% learning-phase regression" >&2
	cat "$SMOKE_DIR/diff26.txt" >&2
	exit 1
fi
grep -q "REGRESSED" "$SMOKE_DIR/diff26.txt" || {
	echo "FAIL: tracestat diff exited nonzero but reported no REGRESSED row" >&2
	cat "$SMOKE_DIR/diff26.txt" >&2
	exit 1
}
echo "tracestat diff: identical traces clean, injected regression caught"

echo "== run ledger smoke =="
# The content-addressed run ledger: the same workload recorded at three
# worker counts must collide into ONE record (the identity contract), with
# one attempt sidecar line per execution; then `tracestat regress` over the
# ledger must stay clean across identical-trace records and catch the same
# injected +30% learning-phase regression the file-level diff gate catches.
LEDGER_DIR="$SMOKE_DIR/ledger"
for P in 1 2 8; do
	"$SMOKE_DIR/characterize" -learn-tests 20 -parallel "$P" \
		-run-dir "$LEDGER_DIR" > /dev/null 2>> "$SMOKE_DIR/ledger.stderr"
done
RUN_COUNT=$(find "$LEDGER_DIR" -maxdepth 1 -name '*.run' | wc -l)
if [ "$RUN_COUNT" -ne 1 ]; then
	echo "FAIL: 3 identical runs at -parallel 1/2/8 left $RUN_COUNT ledger records, want 1" >&2
	cat "$SMOKE_DIR/ledger.stderr" >&2
	exit 1
fi
ATTEMPTS=$(cat "$LEDGER_DIR"/*.attempts.jsonl | wc -l)
if [ "$ATTEMPTS" -ne 3 ]; then
	echo "FAIL: expected 3 attempt sidecar lines, found $ATTEMPTS" >&2
	exit 1
fi
go run ./cmd/tracestat ledger "$LEDGER_DIR" > "$SMOKE_DIR/ledger.txt"
grep -q "characterize" "$SMOKE_DIR/ledger.txt" || {
	echo "FAIL: tracestat ledger does not list the recorded run" >&2
	cat "$SMOKE_DIR/ledger.txt" >&2
	exit 1
}
# A changed identity flag (-weights output) mints a second record whose
# trace is identical, so the sliding-window regress gate must stay clean.
"$SMOKE_DIR/characterize" -learn-tests 20 -parallel 4 -weights "$SMOKE_DIR/w.json" \
	-run-dir "$LEDGER_DIR" > /dev/null 2>> "$SMOKE_DIR/ledger.stderr"
go run ./cmd/tracestat regress -fail-over 20 -min-measurements 10 "$LEDGER_DIR" || {
	echo "FAIL: tracestat regress flagged identical-trace ledger records" >&2
	exit 1
}
# The injected +30% learning phase must trip the gate over the ledger.
"$SMOKE_DIR/characterize" -learn-tests 26 -parallel 4 \
	-run-dir "$LEDGER_DIR" > /dev/null 2>> "$SMOKE_DIR/ledger.stderr"
if go run ./cmd/tracestat regress -fail-over 20 -min-measurements 10 \
	"$LEDGER_DIR" > "$SMOKE_DIR/regress.txt"; then
	echo "FAIL: tracestat regress missed the injected +30% regression in the ledger" >&2
	cat "$SMOKE_DIR/regress.txt" >&2
	exit 1
fi
grep -q "REGRESSED" "$SMOKE_DIR/regress.txt" || {
	echo "FAIL: tracestat regress exited nonzero but reported no REGRESSED row" >&2
	cat "$SMOKE_DIR/regress.txt" >&2
	exit 1
}
go run ./cmd/tracestat regress -min-measurements 10 -json "$LEDGER_DIR" > "$SMOKE_DIR/regress.json"
grep -q '"labels"' "$SMOKE_DIR/regress.json" || {
	echo "FAIL: tracestat regress -json produced no labels array" >&2
	cat "$SMOKE_DIR/regress.json" >&2
	exit 1
}
echo "run ledger: 3 executions -> 1 record ($ATTEMPTS attempts); regress clean on identical traces, +30% injected regression caught"

echo "== crash bundle smoke =="
# An injected worker-pool panic must kill the run (nonzero exit) AND leave a
# complete post-mortem bundle under -crash-dir.
CRASH_DIR="$SMOKE_DIR/crash"
if "$SMOKE_DIR/characterize" -learn-tests 20 -crash-dir "$CRASH_DIR" \
	-inject-fault task-panic > /dev/null 2> "$SMOKE_DIR/crash.stderr"; then
	echo "FAIL: characterize -inject-fault task-panic exited zero" >&2
	exit 1
fi
BUNDLE=$(find "$CRASH_DIR" -maxdepth 1 -type d -name 'panic-*' | head -1)
if [ -z "$BUNDLE" ]; then
	echo "FAIL: no panic-* crash bundle in $CRASH_DIR" >&2
	cat "$SMOKE_DIR/crash.stderr" >&2
	exit 1
fi
for f in meta.json flags.json stacks.txt flight.json metrics.json report.txt; do
	[ -s "$BUNDLE/$f" ] || {
		echo "FAIL: crash bundle missing or empty $f" >&2
		ls -la "$BUNDLE" >&2
		exit 1
	}
done
grep -q '"reason": "panic"' "$BUNDLE/meta.json" || {
	echo "FAIL: meta.json does not record the panic reason" >&2
	cat "$BUNDLE/meta.json" >&2
	exit 1
}
grep -q 'injected fault' "$BUNDLE/meta.json" || {
	echo "FAIL: meta.json does not carry the panic cause" >&2
	exit 1
}
grep -q 'goroutine' "$BUNDLE/stacks.txt" || {
	echo "FAIL: stacks.txt has no goroutine dump" >&2
	exit 1
}
grep -q 'non_deterministic' "$BUNDLE/flight.json" || {
	echo "FAIL: flight.json is not quarantined under non_deterministic" >&2
	exit 1
}
echo "crash bundle complete at $BUNDLE"

echo "== job service smoke =="
# charserved end to end: boot on :0 with a persistent queue, submit a learn
# job over HTTP and watch it finalize into the SAME content-addressed
# ledger record the equivalent CLI invocation mints; DELETE a queued job
# (must land in canceled); then SIGTERM must shut the service down cleanly
# (exit 0). The race-enabled service load test — 200+ mixed-priority jobs
# with random cancellations, exact dispatch order, budget high-water and
# goroutine-leak checks — already ran in the `go test -race ./...` suite
# above.
go build -o "$SMOKE_DIR/charserved" ./cmd/charserved
SRV_Q="$SMOKE_DIR/jobq"
SRV_RUNS="$SMOKE_DIR/jobruns"
"$SMOKE_DIR/charserved" -listen 127.0.0.1:0 -queue-dir "$SRV_Q" \
	-run-dir "$SRV_RUNS" -workers 4 2> "$SMOKE_DIR/serve.stderr" &
SRV_PID=$!
SRV_ADDR=""
i=0
while [ $i -lt 100 ]; do
	SRV_ADDR=$(sed -n 's#^charserved: serving http://\([^/]*\)/.*#\1#p' "$SMOKE_DIR/serve.stderr")
	[ -n "$SRV_ADDR" ] && break
	kill -0 "$SRV_PID" 2> /dev/null || break
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$SRV_ADDR" ]; then
	echo "FAIL: charserved never announced its address" >&2
	cat "$SMOKE_DIR/serve.stderr" >&2
	exit 1
fi
JOB=$(curl -sf -X POST "http://$SRV_ADDR/jobs" \
	-d '{"flow":"learn","seed":1,"args":{"learn-tests":"20"}}')
JOB_ID=$(printf '%s' "$JOB" | grep -o '"id": "j[0-9]*"' | head -1 | grep -o 'j[0-9]*')
if [ -z "$JOB_ID" ]; then
	echo "FAIL: POST /jobs returned no job ID: $JOB" >&2
	exit 1
fi
STATE=""
BODY=""
i=0
while [ $i -lt 300 ]; do
	BODY=$(curl -sf "http://$SRV_ADDR/jobs/$JOB_ID")
	STATE=$(printf '%s' "$BODY" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
	[ "$STATE" = "done" ] && break
	case "$STATE" in failed | canceled) break ;; esac
	sleep 0.1
	i=$((i + 1))
done
if [ "$STATE" != "done" ]; then
	echo "FAIL: learn job $JOB_ID ended in state '$STATE': $BODY" >&2
	exit 1
fi
RUN_ID=$(printf '%s' "$BODY" | grep -o '"run_id": "[0-9a-f]*"' | grep -o '[0-9a-f]\{32\}')
if [ -z "$RUN_ID" ] || [ ! -f "$SRV_RUNS/$RUN_ID.run" ]; then
	echo "FAIL: job $JOB_ID finalized no ledger record (run_id '$RUN_ID')" >&2
	exit 1
fi
# Identity: the CLI-equivalent run in a fresh ledger must mint the same ID.
"$SMOKE_DIR/characterize" -learn-only -learn-tests 20 \
	-run-dir "$SMOKE_DIR/jobcli" > /dev/null 2>&1
if [ ! -f "$SMOKE_DIR/jobcli/$RUN_ID.run" ]; then
	echo "FAIL: CLI-equivalent run did not mint job run ID $RUN_ID:" >&2
	ls "$SMOKE_DIR/jobcli" >&2
	exit 1
fi
# SSE: a progress stream on the finished job delivers its done frame.
curl -sf --max-time 5 "http://$SRV_ADDR/jobs/$JOB_ID/progress?sse=1" \
	> "$SMOKE_DIR/job.sse" || true
grep -q "event: progress" "$SMOKE_DIR/job.sse" || {
	echo "FAIL: /jobs/$JOB_ID/progress?sse=1 streamed no progress frame" >&2
	exit 1
}
# Cancellation: a job queued behind a budget-filling one DELETEs to canceled.
curl -sf -X POST "http://$SRV_ADDR/jobs" \
	-d '{"flow":"optimize","seed":2,"args":{"learn-tests":"60"},"parallel":4}' > /dev/null
VICTIM=$(curl -sf -X POST "http://$SRV_ADDR/jobs" \
	-d '{"flow":"learn","seed":3,"parallel":4}' |
	grep -o '"id": "j[0-9]*"' | head -1 | grep -o 'j[0-9]*')
CANCELED=$(curl -sf -X DELETE "http://$SRV_ADDR/jobs/$VICTIM")
printf '%s' "$CANCELED" | grep -q '"state": "canceled"' || {
	echo "FAIL: DELETE of queued job $VICTIM did not cancel it: $CANCELED" >&2
	exit 1
}
kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
	echo "FAIL: charserved exited nonzero on SIGTERM" >&2
	cat "$SMOKE_DIR/serve.stderr" >&2
	exit 1
}
grep -q "shutdown complete" "$SMOKE_DIR/serve.stderr" || {
	echo "FAIL: charserved did not log a clean shutdown" >&2
	cat "$SMOKE_DIR/serve.stderr" >&2
	exit 1
}
echo "job service: learn job = CLI run $RUN_ID; queued job canceled; clean SIGTERM shutdown"

echo "== fleet determinism under -race =="
# The scheduling-equivalence suite is the license for the fleet being the
# default: fleet ≡ batch pool bit-for-bit (results, merged stats, trace
# bytes) at every worker count, with the race detector watching the
# persistent workers, the streamed deliveries and the wavefront merges.
go test -race -count=1 \
	-run 'TestStream|TestFleetMatchesRun' ./internal/parallel/
go test -race -count=1 \
	-run 'TestSchedulerEquivalence|TestOptimizeDeterministic' ./internal/core/
go test -race -count=1 \
	-run 'TestAddTestsOn|TestAddFmaxTestsOn|TestWavefront' ./internal/shmoo/
echo "fleet determinism suite race-clean"

echo "== fleet scheduling gate (fig. 5 fleet vs batch at 8 workers) =="
# The persistent pipelined fleet must beat the frozen per-batch fork/join
# pool by >= 1.25x wall-clock on the fig. 5 optimization scheme at 8
# workers. The gap is total work, not concurrency (CI runs on one core):
# fleet workers keep their forked ATE insertions — and the device's dense
# execution scratch — alive across generations, so the per-generation
# device clones and per-call map allocations of the batch pool disappear.
# 5 iterations per variant keep the ratio out of cold-start noise.
SCHED_OUT=$(go test -run '^$' \
	-bench 'BenchmarkFigure5Sched/.*/workers=8$' \
	-benchtime 5x -timeout 60m .)
printf '%s\n' "$SCHED_OUT"
printf '%s\n' "$SCHED_OUT" | awk '
	BEGIN { min_speedup = 1.25; batch = 0; fleet = 0 }
	/^BenchmarkFigure5Sched\/sched=batch\/workers=8/ {
		for (i = 2; i <= NF; i++) if ($i == "ns/op") batch = $(i - 1) + 0
	}
	/^BenchmarkFigure5Sched\/sched=fleet\/workers=8/ {
		for (i = 2; i <= NF; i++) if ($i == "ns/op") fleet = $(i - 1) + 0
	}
	END {
		if (batch <= 0 || fleet <= 0) {
			printf "FAIL: scheduling gate missing batch or fleet ns/op\n" > "/dev/stderr"
			exit 1
		}
		if (fleet * min_speedup > batch) {
			printf "FAIL: fleet %.0f ns/op is only %.2fx the batch pool (%.0f); need >= %.2fx\n", \
				fleet, batch / fleet, batch, min_speedup > "/dev/stderr"
			exit 1
		}
		printf "scheduling gate: fleet %.0f ns/op = %.2fx faster than batch pool %.0f\n", \
			fleet, batch / fleet, batch
	}
'

echo "== benchmarks =="
BENCH_OUT=$(go test -run '^$' \
	-bench '^(BenchmarkFigure5OptimizationScheme|BenchmarkTable1FullComparison)$' \
	-benchtime 1x -timeout 60m .)
printf '%s\n' "$BENCH_OUT"
printf '%s\n%s\n' "$BENCH_OUT" "$SCHED_OUT" | awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; meas = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "measurements") meas = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"ate_measurements\": %s}", name, ns, meas
	}
	BEGIN { printf "[\n" }
	END   { printf "\n]\n" }
' > BENCH_parallel.json
echo "wrote BENCH_parallel.json:"
cat BENCH_parallel.json

echo "== observability benchmark =="
OBS_OUT=$(go test -run '^$' \
	-bench '^BenchmarkObservabilityInstrumentedFlow$' \
	-benchtime 1x -timeout 60m .)
printf '%s\n' "$OBS_OUT"
printf '%s\n' "$OBS_OUT" | awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; meas = "null"; rate = "null"; saved = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "measurements") meas = $(i - 1)
			if ($i == "cache_hit_rate") rate = $(i - 1)
			if ($i == "measurements_saved") saved = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"cache_hit_rate\": %s, \"ate_measurements\": %s, \"measurements_saved\": %s}", name, ns, rate, meas, saved
	}
	BEGIN { printf "[\n" }
	END   { printf "\n]\n" }
' > BENCH_obs.json
echo "wrote BENCH_obs.json:"
cat BENCH_obs.json

echo "== kernel benchmarks (allocation gate) =="
# Ceilings sit ~3x above the steady-state numbers measured after the
# zero-allocation kernel rewrite (train 30, batch-predict 4 allocs/op); the
# pre-rewrite path ran at 25661 and 1632. ensemble-predict dropped from 97
# to 1 alloc/op when Vote started reusing a pooled scratch, so its ceiling
# tightened from 300 to 8.
KERNELS_OUT=$(go test -run '^$' \
	-bench '^BenchmarkLearningKernels$' \
	-benchmem -benchtime 20x -timeout 10m .)
printf '%s\n' "$KERNELS_OUT"
printf '%s\n' "$KERNELS_OUT" | awk '
	BEGIN {
		printf "[\n"
		ceiling["BenchmarkLearningKernels/train"] = 100
		ceiling["BenchmarkLearningKernels/ensemble-predict"] = 8
		ceiling["BenchmarkLearningKernels/batch-predict"] = 16
		fail = 0
	}
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; bytes = "null"; allocs = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "B/op") bytes = $(i - 1)
			if ($i == "allocs/op") allocs = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
		if (name in ceiling && allocs != "null" && allocs + 0 > ceiling[name]) {
			printf "FAIL: %s allocs/op = %s exceeds ceiling %d\n", name, allocs, ceiling[name] > "/dev/stderr"
			fail = 1
		}
	}
	END {
		printf "\n]\n"
		exit fail
	}
' > BENCH_kernels.json
echo "wrote BENCH_kernels.json:"
cat BENCH_kernels.json

echo "== lot pipeline benchmark (fab-scale gates) =="
# Three hard gates on the streamed lot pipeline, measured on a 10k-die lot:
#   - speedup: streamed workers=8 cache=off must screen >= 2x the dies/sec
#     of the frozen pre-streaming per-die loop (BenchmarkLotScreenPerDieLoop);
#   - warm hit rate: a run against an already-populated cache dir must serve
#     >= 50% of dies from disk (in practice 100%);
#   - allocations: the streamed path must stay under 48 mallocs per die
#     (~3x the 15 measured after the hoisted-worker/profile-bank rewrite).
LOT_OUT=$(go test -run '^$' \
	-bench '^(BenchmarkLotScreenPerDieLoop|BenchmarkLotScreenStream)$' \
	-benchtime 1x -timeout 60m .)
printf '%s\n' "$LOT_OUT"
printf '%s\n' "$LOT_OUT" | awk '
	BEGIN {
		printf "[\n"
		alloc_ceiling = 48
		min_speedup = 2.0
		min_warm_hit_rate = 0.5
		perdie = 0; stream8 = 0
		fail = 0
	}
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = "null"; dps = "null"; meas = "null"; rate = "null"; apd = "null"; bytes = "null"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "dies_per_sec") dps = $(i - 1)
			if ($i == "measurements") meas = $(i - 1)
			if ($i == "hit_rate") rate = $(i - 1)
			if ($i == "allocs_per_die") apd = $(i - 1)
			if ($i == "bytes_on_disk") bytes = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"dies_per_sec\": %s, \"ate_measurements\": %s, \"hit_rate\": %s, \"allocs_per_die\": %s, \"bytes_on_disk\": %s}", \
			name, ns, dps, meas, rate, apd, bytes
		if (name == "BenchmarkLotScreenPerDieLoop") perdie = dps + 0
		if (name == "BenchmarkLotScreenStream/workers=8/cache=off") stream8 = dps + 0
		if (name ~ /cache=warm/ && rate != "null" && rate + 0 < min_warm_hit_rate) {
			printf "FAIL: %s hit rate %s below %.2f\n", name, rate, min_warm_hit_rate > "/dev/stderr"
			fail = 1
		}
		if (name ~ /cache=off/ && apd != "null" && apd + 0 > alloc_ceiling) {
			printf "FAIL: %s allocs_per_die = %s exceeds ceiling %d\n", name, apd, alloc_ceiling > "/dev/stderr"
			fail = 1
		}
	}
	END {
		printf "\n]\n"
		if (perdie <= 0 || stream8 <= 0) {
			printf "FAIL: lot benchmark output missing per-die or streamed dies_per_sec\n" > "/dev/stderr"
			fail = 1
		} else if (stream8 < min_speedup * perdie) {
			printf "FAIL: streamed workers=8 %.0f dies/sec is below %.1fx the per-die loop (%.0f)\n", \
				stream8, min_speedup, perdie > "/dev/stderr"
			fail = 1
		} else {
			printf "lot gate: streamed %.0f dies/sec = %.2fx per-die loop %.0f\n", stream8, stream8 / perdie, perdie
		}
		exit fail
	}
' > BENCH_lot.json
echo "wrote BENCH_lot.json:"
cat BENCH_lot.json

echo "== benchdiff gates against committed baselines =="
# The fresh BENCH_*.json files must not regress the counter-style metrics
# (allocs, hit rates, measurements saved) recorded in baselines/ by more
# than 20%. Wall-clock metrics are skipped by default — they track the CI
# machine, not the code. Refresh a baseline deliberately (cp BENCH_x.json
# baselines/) when a perf change is intentional.
for bench in BENCH_kernels.json BENCH_obs.json BENCH_parallel.json BENCH_lot.json; do
	go run ./cmd/tracestat benchdiff -fail-over 20 "baselines/$bench" "$bench" || {
		echo "FAIL: $bench regressed against baselines/$bench" >&2
		exit 1
	}
done
echo "all benchmark baselines hold"
