package repro_test

import (
	"testing"

	"repro/internal/neural"
	"repro/internal/testgen"
)

// kernelDataset builds the fixed synthetic severity dataset the kernel
// benchmarks train and predict on: random-test feature vectors against a
// smooth single-output target, sized like one learning-phase member subset.
func kernelDataset(n int) neural.Dataset {
	gen := testgen.NewRandomGenerator(1234, 4096, testgen.DefaultConditionLimits())
	limits := testgen.DefaultConditionLimits()
	data := make(neural.Dataset, n)
	for i := range data {
		f := testgen.ExtractFeatures(gen.Next(), limits)
		t := 0.0
		for _, v := range f {
			t += v
		}
		t /= float64(len(f))
		data[i] = neural.Sample{Input: f, Target: []float64{t}}
	}
	return data
}

// BenchmarkLearningKernels isolates the pure-software neural kernels of the
// learning/optimization hot path — no ATE, no device simulation. The CI
// gate (ci.sh) pins allocs/op ceilings on both sub-benchmarks so allocation
// regressions in the kernels cannot land silently.
func BenchmarkLearningKernels(b *testing.B) {
	data := kernelDataset(96)
	sizes := []int{testgen.NumFeatures, 20, 10, 1}

	// One backprop training run per op: fixed epoch budget over the fixed
	// dataset, the same work a fig. 4 ensemble member does.
	b.Run("train", func(b *testing.B) {
		train, val := data.Split(7, 0.85)
		cfg := neural.DefaultTrainConfig(7)
		cfg.Epochs = 40
		cfg.LearnTarget = 1e-12 // never satisfied: every op trains all epochs
		cfg.Patience = 1000
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := neural.New(7, sizes...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := n.Train(train, val, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One full-dataset voting sweep per op: the ensemble scores every
	// sample, the same work one ProposeSeeds candidate-pool pass does per
	// len(data) candidates.
	b.Run("ensemble-predict", func(b *testing.B) {
		cfg := neural.DefaultTrainConfig(7)
		cfg.Epochs = 5
		ens, _, err := neural.NewEnsemble(7, 3, sizes, data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		inputs := make([][]float64, len(data))
		for i, s := range data {
			inputs[i] = s.Input
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				if _, _, err := ens.Vote(in); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// The same sweep through the batched entry point: one flat result
	// arena for the whole dataset instead of a copy per call.
	b.Run("batch-predict", func(b *testing.B) {
		cfg := neural.DefaultTrainConfig(7)
		cfg.Epochs = 5
		ens, _, err := neural.NewEnsemble(7, 3, sizes, data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		inputs := make([][]float64, len(data))
		for i, s := range data {
			inputs[i] = s.Input
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ens.VoteBatch(inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
