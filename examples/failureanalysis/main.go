// Failureanalysis: what happens after the CI flow finds a worst-case test —
// the detailed-analysis and manufacturing handoff the paper points at in
// §2/§6 ("re-simulated or analyzed in detail with ATE (e.g. wafer probing
// analysis) to localize the design weakness efficiently", "develop a
// production test program in manufacturing test").
//
// The walkthrough: take the coordinated worst-case pattern, trace it cycle
// by cycle, locate the supply-stress hot window, simulate the power
// delivery network droop (including the resonance sweep), provoke and
// repair a weak cell with row redundancy, and finally build a production
// program and show that adding the worst-case screen stops the escapes a
// March-only program ships.
//
// Run with: go run ./examples/failureanalysis
package main

import (
	"fmt"
	"log"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/pdn"
	"repro/internal/testgen"
)

func worstPattern(words uint32) testgen.Test {
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0) // row 0; the weak cell sits in row 2, probed below
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	// Probe the weak address so the failure is observable.
	seq = append(seq,
		testgen.Vector{Op: testgen.OpWrite, Addr: 33, Data: 0x12345678},
		testgen.Vector{Op: testgen.OpRead, Addr: 33},
	)
	return testgen.Test{Name: "WORST", Seq: seq, Cond: testgen.NominalConditions()}
}

func main() {
	log.SetFlags(0)

	geom := dut.DefaultGeometry()
	// The analysed sample: a die with a marginal cell in bank 0, row 2.
	die := dut.NewDie(0, dut.CornerTypical, dut.WithWeakCell(33, 1.85))
	dev, err := dut.NewDevice(geom, die)
	if err != nil {
		log.Fatal(err)
	}
	worst := worstPattern(geom.Words())

	// --- 1. Cycle trace and hot window ------------------------------------
	records, profile, err := dev.Trace(worst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d cycles, activity ATD %.2f / toggle %.2f / coupling %.2f, ridge %.2f\n",
		len(records), profile.Act.ATDPeak, profile.Act.TogglePeak,
		profile.Act.CouplingScore, profile.Ridge())
	if start, end, mean, ok := dut.HotWindow(records, 32); ok {
		fmt.Printf("hot window: cycles %d–%d, mean SSN %.2f — first probe target\n", start, end, mean)
	}
	corrupted := 0
	for _, r := range records {
		if r.Corrupted {
			fmt.Printf("functional failure: cycle %d, address %d (bank %d row %d col %d)\n",
				r.Cycle, r.Addr, r.Bank, r.Row, r.Col)
			corrupted++
		}
	}

	// --- 2. PDN droop simulation ------------------------------------------
	network := pdn.Default()
	droop, err := network.Simulate(records, worst.Cond.VddV, worst.Cond.ClockMHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPDN (f0 %.1f MHz, ζ %.2f): peak droop %.3f V at cycle %d, mean %.4f V\n",
		network.ResonantHz()/1e6, network.DampingRatio(),
		droop.PeakDroopV, droop.PeakCycle, droop.MeanDroopV)
	best, peak, err := network.WorstBurstSpacing(worst.Cond.VddV, worst.Cond.ClockMHz, 1, 8, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resonance sweep: worst burst gap %d cycles (droop %.3f V) — the PSN mechanism\n", best, peak)

	// --- 3. Row-redundancy repair ------------------------------------------
	tester := ate.New(dev, 3)
	rep, err := core.RepairAndRetest(tester, []testgen.Test{worst})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", rep.Format())

	// --- 4. Production program handoff -------------------------------------
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, testgen.NominalConditions())
	if err != nil {
		log.Fatal(err)
	}
	lot := make([]*dut.Die, 15)
	for i := range lot {
		if i%3 == 0 {
			lot[i] = dut.NewDie(i, dut.CornerSlow, dut.WithExtraTDQOffsetNS(-3))
		} else {
			lot[i] = dut.NewDie(i, dut.CornerTypical)
		}
	}
	marchProg, err := core.BuildProductionProgram(ate.TDQ, []testgen.Test{march}, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	oracle := worstPattern(geom.Words())
	marchRun, err := core.RunProduction(marchProg, oracle, lot, geom, 11)
	if err != nil {
		log.Fatal(err)
	}
	ciProg, err := core.BuildProductionProgram(ate.TDQ, []testgen.Test{march, oracle}, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	ciRun, err := core.RunProduction(ciProg, oracle, lot, geom, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nproduction handoff (the reason characterization exists):")
	fmt.Printf("  March-only program: %s", marchRun.Format())
	fmt.Printf("  with CI screen:     %s", ciRun.Format())
	if marchRun.Escapes > 0 && ciRun.Escapes == 0 {
		fmt.Printf("→ the CI-found screen stops %d escape(s) the March-only program shipped.\n",
			marchRun.Escapes)
	}
}
