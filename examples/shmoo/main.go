// Shmoo: regenerates the fig. 8 worst-case device parameter variation
// analysis — many tests overlaid in one Vdd-vs-T_DQ shmoo plot.
//
// The all-pass region ('*') is bounded by the *worst* test at every supply
// point; the partial band (digits) is exactly the test-dependent trip point
// variation the multiple-trip-point concept exists to expose. A crafted
// high-activity test is overlaid last to show how a worst-case test pushes
// the boundary further left than any of the random tests.
//
// Run with: go run ./examples/shmoo
package main

import (
	"fmt"
	"log"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/shmoo"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)

	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		log.Fatal(err)
	}
	tester := ate.New(dev, 11)
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(12, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond

	plot, err := shmoo.NewPlot(shmoo.DefaultTDQAxis(), shmoo.DefaultVddAxis())
	if err != nil {
		log.Fatal(err)
	}

	const overlay = 200
	fmt.Printf("sweeping %d random tests over the Vdd × T_DQ grid…\n", overlay)
	for i := 0; i < overlay; i++ {
		if err := plot.AddTest(tester, gen.Next()); err != nil {
			log.Fatal(err)
		}
	}

	// A coordinated worst-case pattern (what the paper's NN+GA flow
	// discovers): adjacent complementary write pairs alternating between
	// complementary base addresses.
	words := dev.Geometry().Words()
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0x00000000},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	worst := testgen.Test{Name: "WORST", Seq: seq, Cond: cond}
	if err := plot.AddTest(tester, worst); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(plot.Render())
	fmt.Printf("\nworst-case trip point variation: %.2f ns\n", plot.WorstCaseVariation())

	// Show the boundary spread at the nominal supply row.
	nominalRow := 0
	bestDiff := 1e9
	for yi := 0; yi < plot.Y.Steps; yi++ {
		if d := abs(plot.Y.Value(yi) - 1.8); d < bestDiff {
			bestDiff, nominalRow = d, yi
		}
	}
	allPass, anyPass, ok := plot.BoundarySpread(nominalRow)
	if ok {
		fmt.Printf("at Vdd %.2f V: every test passes to %.1f ns, the best-margin test to %.1f ns\n",
			plot.Y.Value(nominalRow), allPass, anyPass)
		fmt.Printf("→ a production strobe set between those values ships escapes; only the\n")
		fmt.Printf("  worst-case test (leftmost boundary) bounds the true specification.\n")
	}
	s := tester.Stats()
	fmt.Printf("\ntester: %d measurements, %.1f s simulated test time\n", s.Measurements, s.TestTimeSec)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
