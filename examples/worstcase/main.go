// Worstcase: the full computational-intelligence flow of the paper — the
// learning scheme of fig. 4 followed by the optimization scheme of fig. 5 —
// reproducing the Table 1 comparison on the simulated memory chip.
//
// The program prints each phase as it runs: multiple-trip-point learning,
// NN ensemble training with the weight file, NN-proposed sub-optimal seeds,
// GA optimization with ATE fitness, and the final worst-case test database.
//
// Run with: go run ./examples/worstcase
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)

	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		log.Fatal(err)
	}
	tester := ate.New(dev, 7)

	cfg := core.DefaultConfig(7)
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal // Table 1 is specified at Vdd 1.8 V

	char, err := core.NewCharacterizer(cfg, tester)
	if err != nil {
		log.Fatal(err)
	}
	defer char.Close()

	// --- Learning scheme (fig. 4) ---------------------------------------
	fmt.Println("phase 1 — learning scheme (fig. 4)")
	learned, err := char.Learn()
	if err != nil {
		log.Fatal(err)
	}
	stats := learned.DSV.Stats()
	fmt.Printf("  measured %d random tests; trip points %.2f–%.2f ns (spread %.2f ns)\n",
		stats.N, stats.Min, stats.Max, stats.Range)
	fmt.Printf("  first search cost %d measurements, follow-up mean %.1f (SUTP, §4)\n",
		stats.FirstSearchCost, stats.FollowupSearchCost)
	fmt.Printf("  trained voting ensemble of %d networks, MSE %.5f\n",
		learned.Ensemble.Size(), learned.EnsembleValErr)

	dir, err := os.MkdirTemp("", "worstcase")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	weightPath := filepath.Join(dir, "nn-weights.json")
	if err := char.SaveWeights(weightPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  weight file: %s\n\n", weightPath)

	// --- NN test generator (fig. 5 step 1) -------------------------------
	fmt.Println("phase 2 — fuzzy-neural test generator (software only)")
	cands, err := char.ProposeSeeds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ranked %d candidates, selected %d sub-optimal seeds\n",
		cfg.CandidatePool, len(cands))
	for i, c := range cands[:3] {
		fmt.Printf("   seed %d: %-9s predicted WCR %.3f (confidence %.2f)\n",
			i+1, c.Test.Name, c.Severity, c.Confidence)
	}
	fmt.Println()

	// --- GA optimization (fig. 5) ----------------------------------------
	fmt.Println("phase 3 — GA optimization with ATE fitness (fig. 5)")
	opt, err := char.OptimizeFrom(core.SeedsForGA(cands))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d generations, %d fitness evaluations, %d population restarts\n",
		opt.GA.Generations, opt.GA.Evaluations, opt.GA.Restarts)
	fmt.Printf("  fitness trajectory (global best WCR): first %.3f → final %.3f\n",
		opt.GA.BestHistory[0], opt.GA.BestHistory[len(opt.GA.BestHistory)-1])

	best, ok := opt.Database.Worst()
	if !ok {
		log.Fatal("no worst case found")
	}
	fmt.Printf("\nworst-case test: %s\n", best.Test.Name)
	fmt.Printf("  WCR %.3f → class %s\n", best.WCR, best.Class)
	fmt.Printf("  T_DQ %.2f ns against the %.0f ns spec\n", best.Value, dut.SpecTDQNS)

	// --- The Table 1 punchline -------------------------------------------
	fmt.Println("\ncomparison (Table 1 shape, paper: 0.619 / 0.701 / 0.904):")
	tab, err := core.RunTable1(core.Table1Config{
		Flow:             cfg,
		RandomTests:      300,
		MarchWindowWords: 100,
	}, tester)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Format())
}
