// Quickstart: the smallest complete characterization session.
//
// It builds the simulated memory test chip, puts it in the ATE socket,
// measures the T_DQ trip point of a deterministic March test the classic
// way (fig. 1), and then demonstrates the paper's multiple-trip-point
// concept (fig. 2) on a handful of random tests — showing that the trip
// point is test dependent.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/trippoint"
)

func main() {
	log.SetFlags(0)

	// 1. A device: typical-corner die, 4-bank 4096-word array.
	die := dut.NewDie(0, dut.CornerTypical)
	dev, err := dut.NewDevice(dut.DefaultGeometry(), die)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A tester insertion with the device in the socket.
	tester := ate.New(dev, 1)

	// 3. Classic single trip point: binary search of the T_DQ strobe on a
	//    March C- pattern (fig. 1).
	cond := testgen.NominalConditions()
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, cond)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (search.Binary{}).Search(tester.Measurer(ate.TDQ, march), ate.TDQ.SearchOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single trip point (fig. 1): %s\n", march.Name)
	fmt.Printf("  T_DQ = %.2f ns in %d measurements (spec: ≥ %.0f ns)\n\n",
		res.TripPoint, res.Measurements, dut.SpecTDQNS)

	// 4. Multiple trip points (fig. 2): ten different random tests, one
	//    trip point each, searched with the paper's SUTP method.
	gen := testgen.NewRandomGenerator(2, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	runner := trippoint.NewRunner(tester, ate.TDQ)

	fmt.Println("multiple trip points (fig. 2): ten random tests")
	for i := 0; i < 10; i++ {
		t := gen.Next()
		m, err := runner.Measure(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s T_DQ = %.2f ns  (%d measurements)\n", t.Name, m.TripPoint, m.Measurements)
	}
	s := runner.DSV().Stats()
	fmt.Printf("\ntrip point spread: %.2f ns (min %.2f by %s, max %.2f)\n",
		s.Range, s.Min, s.MinTest, s.Max)
	fmt.Println("→ the trip point is test dependent: no single pre-defined test bounds it.")
}
