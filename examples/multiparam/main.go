// Multiparam: the production-shaped end-to-end session — everything after
// the headline experiment. One NN per parameter (§5), fuzzy rule-base
// diagnosis of each worst case, functional screening of the database,
// minimization of the dominant weakness test for wafer-probe analysis,
// drift detection under device self-heating, and finally lot screening
// plus environmental spec extraction.
//
// Run with: go run ./examples/multiparam
package main

import (
	"fmt"
	"log"

	"repro/internal/ate"
	"repro/internal/charspec"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/trippoint"
)

func main() {
	log.SetFlags(0)

	geom := dut.DefaultGeometry()
	dev, err := dut.NewDevice(geom, dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		log.Fatal(err)
	}
	tester := ate.New(dev, 3)
	tester.Heating = ate.DefaultThermal() // realistic self-heating session

	// --- One flow per parameter (§5) --------------------------------------
	cfg := core.DefaultConfig(3)
	cfg.LearnTests = 200 // three flows; keep each lean
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal

	fmt.Println("characterizing T_DQ, Fmax and Vddmin with one NN per parameter…")
	rep, err := core.MultiCharacterize(cfg, tester, []ate.Parameter{ate.TDQ, ate.Fmax, ate.VddMin})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Format())

	worst, _ := rep.WorstOverall()

	// --- Functional screen (§6: failures stored separately) ---------------
	fails, err := core.FunctionalScreen(tester, worst.Database)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional screen: %d of the worst-case tests provoke value failures\n", fails)

	// --- Minimize the dominant weakness for failure analysis --------------
	char, err := core.NewCharacterizer(withParam(cfg, worst.Parameter), tester)
	if err != nil {
		log.Fatal(err)
	}
	defer char.Close()
	min, err := char.Minimize(worst.Worst.Test, core.DefaultMinimizeConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimized %s: %d → %d vectors (%.1f×) at WCR %.3f → %.3f\n",
		worst.Worst.Test.Name, len(min.Original.Seq), len(min.Minimized.Seq),
		min.ReductionFactor(), min.OriginalWCR, min.MinimizedWCR)

	// --- Drift check under self-heating ------------------------------------
	tester.Heating.Reset() // fresh insertion: watch the warm-up drift
	runner := trippoint.NewRunner(tester, worst.Parameter)
	runner.Searcher = &search.SUTP{Refine: true} // full resolution to resolve the drift
	for i := 0; i < 40; i++ {
		if _, err := runner.Measure(min.Minimized); err != nil {
			log.Fatal(err)
		}
	}
	drift := runner.DSV().DetectDrift()
	fmt.Printf("thermal drift over 40 repeats: slope %+.4f %s/test (significant: %v, junction +%.1f °C)\n",
		drift.Slope, worst.Parameter.Unit(), drift.Significant, tester.Heating.RiseC())

	// --- Lot screen + spec extraction --------------------------------------
	lot := dut.NewDieLot(9, 8)
	screen, err := core.ScreenLot(worst.Parameter, []testgen.Test{min.Minimized, worst.Worst.Test}, lot, geom, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(screen.Format())

	worstDie := lot[screen.WorstDie.DieID]
	specDev, err := dut.NewDevice(geom, worstDie)
	if err != nil {
		log.Fatal(err)
	}
	specTester := ate.New(specDev, 99)
	spec, err := charspec.Extract(specTester, worst.Parameter,
		[]testgen.Test{worst.Worst.Test}, charspec.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("spec extraction on worst die #%d (%s): worst corner %s, recommended limit %.3f %s (meets spec: %v)\n",
		worstDie.ID, worstDie.Corner, spec.WorstCorner, spec.RecommendedLimit,
		worst.Parameter.Unit(), spec.MeetsSpec)
}

func withParam(cfg core.Config, p ate.Parameter) core.Config {
	cfg.Parameter = p
	return cfg
}
