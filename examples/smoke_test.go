// Package examples_test smoke-tests every runnable example: each must
// build, exit 0 in well under two seconds, and print the same non-empty
// output on every run. The examples are the repo's executable
// documentation — this is the test that keeps them from rotting.
package examples_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"
	"time"
)

// tempPathRe masks the one legitimately run-dependent output fragment:
// worstcase saves its weight file under os.MkdirTemp.
var tempPathRe = regexp.MustCompile(`/[^ ]*worstcase[0-9]+[^ ]*`)

func runExample(t *testing.T, bin string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin)
	cmd.Env = append(os.Environ(), "GOMAXPROCS=4")
	start := time.Now()
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("example did not finish within 30s")
	}
	if err != nil {
		t.Fatalf("example failed: %v\n%s", err, out)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("example took %v; these are meant to be quick demos", elapsed)
	}
	return out
}

func TestExamplesBuildRunAndAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke builds six binaries; skipped with -short")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) != 6 {
		t.Fatalf("expected 6 examples, found %d: %v (update this count when adding one)", len(names), names)
	}

	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goBin); err != nil {
		goBin = "go"
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command(goBin, "build", "-o", bin, "./"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", name, err, out)
			}

			first := runExample(t, bin)
			if len(bytes.TrimSpace(first)) == 0 {
				t.Fatal("example printed nothing")
			}
			second := runExample(t, bin)

			a := tempPathRe.ReplaceAll(first, []byte("TMPDIR"))
			b := tempPathRe.ReplaceAll(second, []byte("TMPDIR"))
			if !bytes.Equal(a, b) {
				t.Errorf("output differs between runs:\n--- first\n%s\n--- second\n%s", a, b)
			}
		})
	}
}
