// Searchsavings: quantifies the Search Until Trip Point algorithm of §4
// (fig. 3) — the paper's answer to the measurement-speed problem of the
// multiple trip point concept.
//
// It measures the same batch of tests four ways (linear, binary, successive
// approximation, SUTP) and prints the per-test measurement cost and the
// cumulative cost curve, showing the "huge savings of measurement time"
// once the reference trip point is established.
//
// Run with: go run ./examples/searchsavings
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/trippoint"
)

func main() {
	log.SetFlags(0)

	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		log.Fatal(err)
	}
	tester := ate.New(dev, 21)
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(22, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond

	const n = 40
	batch := gen.Batch(n)

	type result struct {
		name  string
		costs []int
		total int
	}
	var results []result
	for _, algo := range []struct {
		name string
		mk   search.Searcher
	}{
		{"binary (full range per test)", search.Binary{}},
		{"successive approximation", search.SuccessiveApproximation{}},
		{"SUTP (paper, §4)", &search.SUTP{SF: 0.4}},
	} {
		runner := trippoint.NewRunner(tester, ate.TDQ)
		runner.Searcher = algo.mk
		dsv, err := runner.MeasureAll(batch)
		if err != nil {
			log.Fatal(err)
		}
		r := result{name: algo.name}
		for _, m := range dsv.Values {
			r.costs = append(r.costs, m.Measurements)
			r.total += m.Measurements
		}
		results = append(results, r)
	}

	fmt.Printf("measurement cost over %d tests (T_DQ, range %g–%g ns, resolution %g ns)\n\n",
		n, ate.TDQ.SearchOptions().Lo, ate.TDQ.SearchOptions().Hi, ate.TDQ.Resolution())
	for _, r := range results {
		fmt.Printf("%-30s total %4d, mean %.1f per test\n", r.name, r.total, float64(r.total)/n)
	}

	// Per-test cost sparkline: the SUTP collapse after test 1 is the
	// paper's fig. 3 story.
	fmt.Println("\nper-test cost (each column is one test):")
	for _, r := range results {
		var b strings.Builder
		for _, c := range r.costs {
			b.WriteByte(sparkChar(c))
		}
		fmt.Printf("%-30s %s\n", r.name, b.String())
	}
	fmt.Println("\nscale: 1 ≤2, 2 ≤4, 3 ≤6, 4 ≤9, 5 ≤12, 6 ≤16, 7 >16 measurements")

	sutp, binary := results[2], results[0]
	fmt.Printf("\nsavings: SUTP uses %.0f%% of the binary-search measurement budget;\n",
		100*float64(sutp.total)/float64(binary.total))
	fmt.Printf("after the first test (RTP established) the mean cost drops to %.1f per test.\n",
		mean(sutp.costs[1:]))
}

func sparkChar(c int) byte {
	switch {
	case c <= 2:
		return '1'
	case c <= 4:
		return '2'
	case c <= 6:
		return '3'
	case c <= 9:
		return '4'
	case c <= 12:
		return '5'
	case c <= 16:
		return '6'
	default:
		return '7'
	}
}

func mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}
