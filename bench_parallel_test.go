// Parallel-engine benchmarks: the fig. 5 GA loop and the fig. 8 shmoo
// overlay fanned across internal/parallel worker pools at 1, 2 and NumCPU
// workers. The determinism tests in internal/core and internal/shmoo pin
// that every variant below produces bit-identical results, so the only
// thing these benchmarks measure is wall clock and ATE measurement cost.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/shmoo"
	"repro/internal/testgen"
)

// parallelWorkerCounts is the 1/2/NumCPU ladder; NumCPU is skipped when it
// duplicates an earlier rung (e.g. on a 1- or 2-core runner).
func parallelWorkerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkFigure5OptimizationParallel runs the fig. 5 optimization scheme
// (NN seed proposal → dual-chromosome GA with ATE fitness) at each worker
// count. Learning is done once per variant outside the timer; every
// iteration is one full GA run through the batch evaluator.
func BenchmarkFigure5OptimizationParallel(b *testing.B) {
	for _, workers := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tester, _ := newRig(b, 78)
			cfg := core.DefaultConfig(78)
			nominal := testgen.NominalConditions()
			cfg.FixedConditions = &nominal
			cfg.Parallelism = workers
			char, err := core.NewCharacterizer(cfg, tester)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := char.Learn(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt, err := char.Optimize()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(opt.Measurements), "measurements")
					b.ReportMetric(float64(opt.CacheHits), "cache_hits")
				}
			}
		})
	}
}

// BenchmarkFigure5MeasurementCache isolates the memo-cache: the same GA run
// with the cache on and off. The cache=off measurements metric is strictly
// higher — elites and migrants are re-measured every generation instead of
// answered from the fingerprint cache.
func BenchmarkFigure5MeasurementCache(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "cache=on"
		if disable {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			tester, _ := newRig(b, 78)
			cfg := core.DefaultConfig(78)
			nominal := testgen.NominalConditions()
			cfg.FixedConditions = &nominal
			cfg.DisableMeasurementCache = disable
			char, err := core.NewCharacterizer(cfg, tester)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := char.Learn(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt, err := char.Optimize()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(opt.Measurements), "measurements")
					b.ReportMetric(float64(opt.CacheHits), "cache_hits")
					b.ReportMetric(float64(opt.CacheMisses), "cache_misses")
				}
			}
		})
	}
}

// BenchmarkFigure8ShmooParallel overlays 100 tests per iteration, like
// BenchmarkFigure8ShmooPlot, but through the hermetic per-test fan-out at
// each worker count.
func BenchmarkFigure8ShmooParallel(b *testing.B) {
	for _, workers := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tester, gen := newRig(b, 81)
			tests := gen.Batch(100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plot, err := shmoo.NewPlot(shmoo.DefaultTDQAxis(), shmoo.DefaultVddAxis())
				if err != nil {
					b.Fatal(err)
				}
				if err := plot.AddTestsParallel(tester, tests, 8100, workers); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(plot.WorstCaseVariation(), "variation_ns")
				}
			}
		})
	}
}

// BenchmarkFigure5Sched is the fleet-vs-batch ladder behind the CI
// scheduling gate: the same fig. 5 optimization run dispatched through the
// persistent pipelined fleet (the default) and through the frozen per-batch
// fork/join pool, at each worker count. Results are bit-identical (pinned by
// TestSchedulerEquivalenceOptimize); the fleet must be materially faster
// because its workers keep their ATE insertions — and their dense execution
// scratch — alive across generations instead of re-forking every batch.
func BenchmarkFigure5Sched(b *testing.B) {
	for _, sched := range []string{core.SchedulerBatch, core.SchedulerFleet} {
		for _, workers := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("sched=%s/workers=%d", sched, workers), func(b *testing.B) {
				tester, _ := newRig(b, 78)
				cfg := core.DefaultConfig(78)
				nominal := testgen.NominalConditions()
				cfg.FixedConditions = &nominal
				cfg.Parallelism = workers
				cfg.Scheduler = sched
				char, err := core.NewCharacterizer(cfg, tester)
				if err != nil {
					b.Fatal(err)
				}
				defer char.Close()
				if _, err := char.Learn(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opt, err := char.Optimize()
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(opt.Measurements), "measurements")
					}
				}
			})
		}
	}
}
